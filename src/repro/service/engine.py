"""Request scheduler: bounded queue, admission control, concurrent shards.

The engine turns a :class:`~repro.service.workload.Workload` (an open-loop
arrival stream) into served answers through a
:class:`~repro.service.shards.ShardedOraclePool`, in repeated cycles:

1. **Ingest** — pull up to ``arrival_burst`` requests from the stream.
   Each arrival passes admission control: requests for pairs that are not
   edges of ``G`` and requests arriving while the queue is at
   ``max_queue_depth`` are rejected (counted, never served).  Admitted
   requests are stamped with their arrival time.
2. **Dispatch** — pop up to ``batch_size`` requests (FIFO) and submit the
   batch to the shard workers as futures.  With ``coalesce=True`` the
   router partitions the batch by owning shard and each shard group becomes
   one future on that shard's pinned worker — with the ``thread`` executor
   the groups execute *concurrently*, one worker per shard, while each
   shard's memo state stays single-threaded.  With ``coalesce=False`` every
   request is its own future on its owner's worker (the unbatched
   baseline).  Up to ``max_inflight`` dispatched batches may be in flight
   before the engine waits on the oldest.
3. **Complete** — resolve the oldest batch's futures, stamp completion,
   record per-request latency (completion − arrival, so queueing delay is
   included), feed answers back to the workload (the adaptive kind steers
   on them), and accumulate telemetry.  Batches complete in dispatch order,
   so the request log is deterministic for a given stream regardless of the
   executor.

Setting ``arrival_burst > batch_size`` models an overloaded ingress: the
queue fills, admission control starts shedding, and the latency percentiles
show the queueing delay — the knobs a load-shedding study needs.  The
admission *rule* (reject non-edges; reject at ``max_queue_depth``) never
changes, and the *executor* is invisible to it: for a fixed
``max_inflight`` the queue passes through exactly the same states whether
shards run inline or on worker threads.  ``max_inflight`` itself, however,
is a scheduling knob like ``batch_size``: a deeper pipeline pops more
batches per cycle, so under overload the queue sits lower and fewer
arrivals are shed — deterministically, but not identically to depth 1.

Everything is deterministic given (graph, seed, workload): answers are pure
functions of ``(graph, seed, query)``, so scheduling, sharding, batching and
the executor can only change *wall-clock* numbers, never answers or
per-request probe totals.  (One scheduling-visible caveat: with
``max_inflight > 1`` the *adaptive* workload sees answer feedback one batch
later than it would serially, which steers its stream differently — still
deterministically.  Open-loop kinds are unaffected.)
``tests/test_service_equivalence.py`` and ``tests/test_service_parallel.py``
pin exactly that.

Every timestamp the engine records flows through the injected ``clock``
(arrival stamps, completion stamps, run duration) — no code path reads
``time.perf_counter`` directly once a clock is supplied, so latency tests
run on fully deterministic synthetic clocks.

The write path (mutating workloads)
-----------------------------------

Workloads may emit graph *mutations* (``TraceOp`` records with op "add" /
"remove" — the ``churn`` kind, or a replayed mixed trace).  Writes obey
three rules that keep the run deterministic and the shared graph safe:

1. **Never shed** — a write enters the queue regardless of depth (the rest
   of the stream is only meaningful if every write applies exactly once, in
   order).  Read admission accounts for queued-but-unapplied writes: a read
   of an edge a queued write will create is admitted, one a queued write
   will delete is rejected — validity is judged against the state the read
   will execute under, not the current graph.
2. **Barrier semantics** — when a write reaches the queue head, every
   in-flight read batch is completed first, then the owning shard's worker
   applies the mutation synchronously; reads queued behind it dispatch
   afterwards.  No shard worker ever reads the graph while it changes.
3. **Lazy cross-shard invalidation** — the mutation bumps vertex epochs on
   the shared graph; sibling shards discard stale memo entries on their
   next lookup (see :mod:`repro.core.cache`), so a write costs O(1) plus
   exactly the recomputation the affected queries actually need.

The fault plane (replication, failover, retries, degradation)
-------------------------------------------------------------

With a :class:`~repro.faults.FaultPlan` configured, a
:class:`~repro.faults.FaultInjector` is stepped once per scheduler cycle
(``begin_cycle``), so every injected failure lands on a tick-clock boundary
and fault runs stay bit-reproducible.  The engine reacts:

* **Failover** — each shard is a :class:`~repro.service.shards.ReplicaSet`
  of ``replication`` same-seed LCA instances, one pinned worker per
  replica.  Reads route to a sticky *primary* (lowest live replica index);
  when a crash takes the primary down, the lowest live replica is promoted
  and inherits the crashed primary's warm memo state by merging the set's
  latest checkpoint (taken every ``checkpoint_interval`` batches on the
  primary's own worker).  Answers and per-request probe totals are
  unchanged by failover — LCA purity plus cold-schedule accounting make
  every replica serve bit-identically.
* **Retries with backoff** — submissions hit by injected transient errors
  (or organic :class:`~repro.exec.TransientTaskError`) and timed-out slow
  batches are resubmitted to the *current* primary, up to
  ``max_retries`` times, burning capped-exponential backoff ticks through
  the injected clock between attempts.  Sub-timeout slow batches just burn
  their delay ticks before the completion stamp.
* **Graceful degradation** — a read whose shard has no live replica (and a
  read whose retries are exhausted) is handled per ``degraded_mode``:
  ``"answer"`` completes it with an explicit degraded answer (``in_spanner
  False``, zero probes, flagged in the request record); ``"shed"``
  re-classifies it as rejected under the distinct ``"degraded"`` shed
  reason.  Writes are **never** degraded or dropped: a write whose shard is
  fully down blocks the queue (a recovery barrier) until the injector's
  scheduled recovery releases it — finite fault durations guarantee that
  happens, and the engine fast-forwards idle cycles to the next fault
  transition instead of spinning.

Fault/recovery/retry/failover counts land in ``ServiceReport.faults``
(:class:`~repro.faults.FaultStats`); availability (non-degraded answers per
read offered) is derived on the report.  Without a fault plan, none of
this machinery runs and the engine behaves byte-identically to the
pre-fault implementation.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Tuple

from ..core.ids import canonical_edge
from ..core.lca import SpannerLCA
from ..core.probes import ProbeStatistics
from ..exec import PINNED_BACKENDS, PinnedWorkers, RetryPolicy, TransientTaskError
from ..faults import FaultInjector, FaultPlan, FaultStats
from ..graphs.graph import Graph
from ..obs.profiler import ProbeProfiler
from .metrics import LatencyStats, ServiceReport
from .shards import ROUTING_POLICIES, ShardedOraclePool
from .trace import TraceOp
from .workload import Workload

Edge = Tuple[int, int]

#: How reads on a fully-down shard are handled (see module docstring).
DEGRADED_MODES = ("answer", "shed")

#: Shed-reason codes reported under ``extras["shed_reasons"]``.
SHED_REASONS = ("invalid", "overload", "degraded")


@dataclass
class ServiceConfig:
    """Tuning knobs of the query service (answers never depend on them)."""

    num_shards: int = 1
    routing: str = "hash"
    batch_size: int = 32
    max_queue_depth: int = 1024
    #: Arrivals ingested per scheduling cycle; defaults to ``batch_size``
    #: (steady state).  Larger values model ingress overload and exercise
    #: admission control.
    arrival_burst: Optional[int] = None
    #: ``True`` — group each dispatched batch by shard and stream it
    #: (the fast path); ``False`` — serve request by request (baseline).
    coalesce: bool = True
    #: Keep a per-request :class:`RequestRecord` log on the engine
    #: (equivalence tests replay it; disable for pure throughput runs).
    record: bool = True
    #: Shard-worker backend: "serial" executes submissions inline (the
    #: reference path), "thread" gives every shard a dedicated worker thread
    #: so shard groups of a batch execute concurrently.
    executor: str = "serial"
    #: Worker-thread cap for the "thread" executor (default: one per shard
    #: replica).  Fewer workers than replicas pin several replicas to one
    #: thread — each replica still executes single-threaded.
    workers: Optional[int] = None
    #: Dispatched-but-uncompleted batch limit (pipelining depth).  1 keeps
    #: the classic dispatch→complete lockstep; higher values overlap batch
    #: N+1's dispatch with batch N's execution on threaded workers.
    max_inflight: int = 1
    #: Replicas per shard (1 = no redundancy).  Each replica is an
    #: independent same-seed LCA on its own pinned worker.
    replication: int = 1
    #: Deterministic fault schedule to inject (None = fault-free run; the
    #: fault machinery is entirely bypassed).
    fault_plan: Optional[FaultPlan] = None
    #: Retry budget for transiently failed / timed-out submissions.
    max_retries: int = 2
    #: Capped-exponential backoff between retries, in clock ticks.
    backoff_base: int = 1
    backoff_cap: int = 8
    #: Slow-batch budget: an injected delay of this many ticks or more is a
    #: timeout (the submission is abandoned and retried).
    timeout_ticks: int = 64
    #: Reads on a fully-down shard: "answer" (explicit degraded answer) or
    #: "shed" (rejected under the distinct "degraded" reason code).
    degraded_mode: str = "answer"
    #: Batches between primary checkpoints (replica warm-state sync).
    checkpoint_interval: int = 8
    #: Probe-kernel selection applied to every shard-replica LCA ("auto",
    #: "python" or "numpy"; None keeps the factory's own choice).  Answers
    #: and probe accounting are kernel-invariant.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; choices: {ROUTING_POLICIES}"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.arrival_burst is not None and self.arrival_burst < 1:
            raise ValueError("arrival_burst must be >= 1")
        if self.executor not in PINNED_BACKENDS:
            raise ValueError(
                f"unknown service executor {self.executor!r}; "
                f"choices: {PINNED_BACKENDS} (shard memo state lives "
                "in-process, so the service runs on serial or thread workers; "
                "the process backend applies to offline materialization)"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.degraded_mode not in DEGRADED_MODES:
            raise ValueError(
                f"unknown degraded_mode {self.degraded_mode!r}; "
                f"choices: {DEGRADED_MODES}"
            )
        if self.timeout_ticks < 1:
            raise ValueError("timeout_ticks must be >= 1")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.kernel is not None:
            from ..kernels import check_kernel

            check_kernel(self.kernel)
        # RetryPolicy validates max_retries / backoff_base / backoff_cap.
        self.retry_policy

    @property
    def effective_burst(self) -> int:
        return self.batch_size if self.arrival_burst is None else self.arrival_burst

    @property
    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
        )


class RequestRecord(NamedTuple):
    """One served request, as logged by the engine (replayable)."""

    seq: int
    u: int
    v: int
    in_spanner: bool
    probe_total: int
    latency_s: float
    #: True when the request was answered degraded (shard fully down /
    #: retries exhausted) rather than served by an oracle.
    degraded: bool = False


class _Pending(NamedTuple):
    seq: int
    u: int
    v: int
    arrival_s: float
    op: str = "query"


class _Part(NamedTuple):
    """One shard-group submission of a dispatched batch.

    ``kind`` is "ok" (a real future), or an injected outcome decided at
    submission time: "flaky" (transient error), "timeout" (slow past the
    timeout budget), "down" (no live replica).  ``group``/``single`` carry
    what a retry needs to resubmit.
    """

    future: object
    positions: List[int]
    group: List[Edge]
    shard_id: int
    kind: str
    delay: int
    single: bool


class _InflightBatch(NamedTuple):
    """A dispatched batch: its requests plus one part per shard group.

    ``span`` is the open ``service.batch`` tracer span (None untraced);
    batches may complete out of submission order under pipelining, which is
    why the span is carried here instead of living on the tracer's stack.
    """

    requests: List[_Pending]
    parts: List[_Part]
    span: object = None


#: Sentinel outcome for requests that could not be served (degraded path).
_DEGRADED = object()


class ServiceEngine:
    """Drives one workload run against a sharded oracle pool.

    Parameters
    ----------
    graph:
        The input graph (shared by every shard, read-only).
    lca_factory:
        ``graph -> SpannerLCA`` factory with the seed baked in; one instance
        is created per shard replica.
    config:
        Scheduler, pool and fault-plane knobs (:class:`ServiceConfig`).
    """

    def __init__(
        self,
        graph: Graph,
        lca_factory: Callable[[Graph], SpannerLCA],
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else ServiceConfig()
        if self.config.kernel is not None:
            inner_factory = lca_factory
            kernel = self.config.kernel

            def lca_factory(g):
                return inner_factory(g).set_kernel(kernel)

        self.pool = ShardedOraclePool(
            graph,
            lca_factory,
            num_shards=self.config.num_shards,
            routing=self.config.routing,
            replication=self.config.replication,
        )
        #: Per-request log of the most recent :meth:`run` (when
        #: ``config.record``); replayed by the equivalence tests.
        self.records: List[RequestRecord] = []

    def run(
        self,
        workload: Workload,
        clock=time.perf_counter,  # repro-lint: disable=DET001 - live default; deterministic runs inject a tick clock
        tracer=None,
        profiler=None,
    ) -> ServiceReport:
        """Serve the whole workload; returns the telemetry report.

        ``clock`` is injectable for tests; it must be monotone.  All
        recorded timestamps (arrival, completion, duration) come from it.

        ``tracer`` (a :class:`repro.obs.tracer.SpanTracer`) records the run
        as a deterministic span hierarchy: one ``service.run`` root, one
        ``service.batch`` span per dispatched batch (opened at submission,
        closed at completion — pipelined batches overlap), and instants for
        sheds, writes, failovers, retries, timeouts and checkpoints.  The
        tracer keeps its own tick clock and is only touched from the
        coordinator thread, so traces are byte-identical across runs,
        executors and worker counts — and never advance the injected clock.

        ``profiler`` (a :class:`repro.obs.profiler.ProbeProfiler`) receives
        the run's probe attribution: a fresh profiler rides on every shard
        replica for the duration of the run and all of them are merged into
        the caller's, in (shard, replica) order, when the run finishes.
        Both hooks are pure observation — answers, probe totals and latency
        stamps are unchanged (pinned by the obs equivalence tests).
        """
        attached = []
        if profiler is not None:
            for replica_set in self.pool.replica_sets:
                for shard in replica_set.replicas:
                    local = ProbeProfiler()
                    shard.lca.attach_profiler(local)
                    attached.append((shard, local))
        try:
            if tracer is not None and tracer.enabled:
                with tracer.span(
                    "service.run",
                    "service",
                    algorithm=self.pool.algorithm,
                    workload=workload.kind,
                    shards=self.config.num_shards,
                    replication=self.config.replication,
                ) as root:
                    report = self._run(workload, clock, tracer)
                    root.args["served"] = report.served
                    root.args["batches"] = report.batches
            else:
                report = self._run(workload, clock, None)
        finally:
            for shard, local in attached:
                profiler.merge(local)
                shard.lca.attach_profiler(None)
        return report

    def _run(self, workload: Workload, clock, tracer) -> ServiceReport:
        config = self.config
        pool = self.pool
        replica_sets = pool.replica_sets
        router = pool.router
        has_edge = self.graph.has_edge
        burst = config.effective_burst
        batch_size = config.batch_size
        depth_limit = config.max_queue_depth
        coalesce = config.coalesce
        max_inflight = config.max_inflight
        num_shards = config.num_shards
        replication = config.replication
        timeout_ticks = config.timeout_ticks
        retry_policy = config.retry_policy
        degraded_shed = config.degraded_mode == "shed"
        tracing = tracer is not None and tracer.enabled

        injector: Optional[FaultInjector] = None
        if config.fault_plan is not None:
            injector = FaultInjector(
                config.fault_plan, num_shards, replication=replication
            )
        faults_on = injector is not None
        fstats = injector.stats if injector is not None else FaultStats()
        # Sticky primaries: reads route to the lowest live replica; the
        # index only moves on failover, never back when an old primary
        # rejoins (it re-syncs and serves as a standby).
        primary = [0] * num_shards

        queue: Deque[_Pending] = deque()
        inflight: Deque[_InflightBatch] = deque()
        records: List[RequestRecord] = []
        self.records = records
        latency = LatencyStats()
        probe_stats = ProbeStatistics()
        offered = admitted = rejected = invalid = served = in_spanner = 0
        shed_reasons = {reason: 0 for reason in SHED_REASONS}
        mutations_applied = 0
        batches = 0
        checkpointed_at = 0
        max_depth_seen = 0
        seq = 0
        exhausted = False
        # Queued-but-unapplied writes, per canonical edge in queue order.
        # Admission checks a query's validity against the graph state it
        # will *execute* under (FIFO order guarantees every earlier queued
        # write lands first), not the current graph: the *last* queued write
        # for an edge decides, and applying one write only retires that
        # write — markers of later still-queued writes on the same edge
        # survive.
        pending_writes: Dict[Edge, Deque[str]] = {}
        # Shard telemetry is lifetime-scoped (an engine can run several
        # workloads); baseline it so the report only covers this run.
        shard_baseline = pool.telemetry()

        def edge_admissible(u: int, v: int) -> bool:
            key = canonical_edge(u, v)
            queued = pending_writes.get(key)
            if queued:
                return queued[-1] == "add"
            return has_edge(u, v)

        def worker_key(shard_id: int, replica_idx: int) -> int:
            return shard_id * replication + replica_idx

        def serving_replica(shard_id: int) -> Optional[int]:
            """Current live primary of a shard, or None when fully down."""
            if not faults_on:
                return 0
            idx = primary[shard_id]
            if injector.is_up(shard_id, idx):
                return idx
            live = injector.live_replicas(shard_id)
            return live[0] if live else None

        started = clock()
        with PinnedWorkers(
            num_shards * replication, config.executor, config.workers
        ) as workers:

            def submit_part(
                shard_id: int,
                group: List[Edge],
                positions: List[int],
                single: bool,
            ) -> _Part:
                """Submit one shard group, applying injected faults."""
                idx = serving_replica(shard_id)
                if idx is None:
                    if tracing:
                        tracer.instant(
                            "service.part_down", "fault",
                            shard=shard_id, size=len(group),
                        )
                    return _Part(None, positions, group, shard_id, "down", 0, single)
                delay = 0
                if faults_on:
                    if injector.take_flake(shard_id, idx):
                        if tracing:
                            tracer.instant(
                                "service.part_flaky", "fault",
                                shard=shard_id, replica=idx,
                            )
                        return _Part(
                            None, positions, group, shard_id, "flaky", 0, single
                        )
                    delay = injector.take_delay(shard_id, idx)
                    if delay >= timeout_ticks:
                        if tracing:
                            tracer.instant(
                                "service.part_timeout", "fault",
                                shard=shard_id, replica=idx, delay=delay,
                            )
                        return _Part(
                            None, positions, group, shard_id, "timeout", delay, single
                        )
                shard = replica_sets[shard_id].replicas[idx]
                if single:
                    (u, v) = group[0]
                    future = workers.submit(
                        worker_key(shard_id, idx), shard.serve_one, u, v
                    )
                else:
                    future = workers.submit(
                        worker_key(shard_id, idx), shard.serve_batch, group, False
                    )
                return _Part(future, positions, group, shard_id, "ok", delay, single)

            def resolve_part(part: _Part) -> Optional[List[Tuple[bool, int]]]:
                """Resolve one part, retrying injected/transient failures.

                Returns outcomes aligned with ``part.positions``, or None
                when the shard is fully down or the retry budget is spent
                (the degraded path).  Backoff, timeout and slow-batch costs
                are charged as clock readings here, on the coordinator, so
                fault runs stay deterministic under any executor.
                """
                attempt = 0
                while True:
                    if part.kind == "down":
                        return None
                    if part.kind == "ok":
                        try:
                            result = part.future.result()
                        except TransientTaskError:
                            pass  # organic transient failure: retry below
                        else:
                            for _ in range(part.delay):
                                clock()
                            if part.single:
                                return [result]
                            return list(zip(result.answers, result.probe_totals))
                    elif part.kind == "timeout":
                        # The engine waited out the full budget before
                        # abandoning the submission.
                        for _ in range(timeout_ticks):
                            clock()
                        fstats.timeouts += 1
                    if attempt >= retry_policy.max_retries:
                        return None
                    for _ in range(retry_policy.backoff_ticks(attempt)):
                        clock()
                    fstats.retries += 1
                    if tracing:
                        tracer.instant(
                            "service.retry", "fault",
                            shard=part.shard_id, kind=part.kind, attempt=attempt,
                        )
                    attempt += 1
                    # Resubmit to the *current* primary — it may differ
                    # from the original target after a failover.
                    part = submit_part(
                        part.shard_id, part.group, part.positions, part.single
                    )

            def complete_oldest() -> None:
                nonlocal served, in_spanner, admitted, rejected
                batch, parts, span = inflight.popleft()
                batch_served = batch_probes = 0
                outcomes: List[object] = [None] * len(batch)
                stamps: List[float] = [0.0] * len(batch)
                if coalesce:
                    # A coalesced batch completes as a unit: one stamp
                    # once every shard group has resolved.
                    for part in parts:
                        result = resolve_part(part)
                        if result is None:
                            for position in part.positions:
                                outcomes[position] = _DEGRADED
                        else:
                            for position, outcome in zip(part.positions, result):
                                outcomes[position] = outcome
                    done = clock()
                    stamps = [done] * len(batch)
                else:
                    # The unbatched baseline stamps each request as its
                    # own future resolves (in batch order), preserving
                    # the classic per-request completion times.
                    for part in parts:
                        result = resolve_part(part)
                        outcomes[part.positions[0]] = (
                            _DEGRADED if result is None else result[0]
                        )
                        stamps[part.positions[0]] = clock()
                for req, outcome, done in zip(batch, outcomes, stamps):
                    degraded = outcome is _DEGRADED
                    if degraded:
                        if degraded_shed:
                            # Re-classify: the read was admitted but cannot
                            # be served; it leaves the ledger as a shed with
                            # its own reason code, keeping
                            # offered == admitted + rejected + mutations and
                            # served == admitted intact even in fault runs.
                            admitted -= 1
                            rejected += 1
                            shed_reasons["degraded"] += 1
                            fstats.degraded_sheds += 1
                            continue
                        fstats.degraded_answers += 1
                        answer, probes = False, 0
                    else:
                        answer, probes = outcome
                    served += 1
                    batch_served += 1
                    batch_probes += probes
                    if answer:
                        in_spanner += 1
                    elapsed = done - req.arrival_s
                    latency.add(elapsed)
                    probe_stats.add(probes)
                    workload.observe((req.u, req.v), answer)
                    if config.record:
                        records.append(
                            RequestRecord(
                                req.seq, req.u, req.v, answer, probes, elapsed,
                                degraded,
                            )
                        )
                if span is not None:
                    tracer.end(span, served=batch_served, probes=batch_probes)

            def try_apply_write(write: _Pending) -> bool:
                # Writes are scheduling barriers: every dispatched read batch
                # resolves first (so no shard worker reads the graph while it
                # changes), then the owning shard's worker applies the
                # mutation synchronously.  A write whose shard is fully down
                # blocks (returns False) — the recovery barrier; it is never
                # dropped or degraded.
                nonlocal mutations_applied
                shard_id = router.shard_of_edge(write.u, write.v)
                idx = serving_replica(shard_id)
                if idx is None:
                    return False
                while inflight:
                    complete_oldest()
                shard = replica_sets[shard_id].replicas[idx]
                workers.submit(
                    worker_key(shard_id, idx),
                    shard.apply_mutation,
                    write.op,
                    write.u,
                    write.v,
                ).result()
                key = canonical_edge(write.u, write.v)
                queued = pending_writes.get(key)
                if queued:
                    queued.popleft()
                    if not queued:
                        del pending_writes[key]
                mutations_applied += 1
                if tracing:
                    tracer.instant(
                        "service.write", "service",
                        op=write.op, shard=shard_id, cycle=cycle,
                    )
                return True

            cycle = -1
            while not exhausted or queue or inflight:
                cycle += 1
                if faults_on:
                    # ---- fault boundary: expire/activate events, rejoin
                    # recovered replicas from the checkpoint, fail over
                    # shards whose primary went down, refresh checkpoints.
                    for shard_id, replica_idx in injector.begin_cycle(cycle):
                        workers.submit(
                            worker_key(shard_id, replica_idx),
                            replica_sets[shard_id].sync,
                            replica_idx,
                        ).result()
                    for shard_id in range(num_shards):
                        if injector.is_up(shard_id, primary[shard_id]):
                            continue
                        live = injector.live_replicas(shard_id)
                        if live:
                            primary[shard_id] = live[0]
                            fstats.failovers += 1
                            if tracing:
                                tracer.instant(
                                    "service.failover", "fault",
                                    shard=shard_id, replica=live[0], cycle=cycle,
                                )
                            workers.submit(
                                worker_key(shard_id, live[0]),
                                replica_sets[shard_id].sync,
                                live[0],
                            ).result()
                    if (
                        replication > 1
                        and batches - checkpointed_at >= config.checkpoint_interval
                    ):
                        for shard_id in range(num_shards):
                            idx = primary[shard_id]
                            if injector.is_up(shard_id, idx):
                                workers.submit(
                                    worker_key(shard_id, idx),
                                    replica_sets[shard_id].checkpoint,
                                    idx,
                                ).result()
                                fstats.checkpoints += 1
                                if tracing:
                                    tracer.instant(
                                        "service.checkpoint", "service",
                                        shard=shard_id, replica=idx, cycle=cycle,
                                    )
                        checkpointed_at = batches

                # ---- ingest: up to `burst` arrivals through admission control
                arrivals = 0
                while arrivals < burst and not exhausted:
                    request = workload.next_request()
                    if request is None:
                        exhausted = True
                        break
                    arrivals += 1
                    offered += 1
                    if isinstance(request, TraceOp) and request.is_mutation:
                        # Writes are never shed: the rest of the stream (the
                        # workload's internal edge mirror, later reads, later
                        # writes) is only valid if every write applies
                        # exactly once, in order.
                        seq += 1
                        queue.append(
                            _Pending(seq, request.u, request.v, clock(), request.op)
                        )
                        key = canonical_edge(request.u, request.v)
                        pending_writes.setdefault(key, deque()).append(request.op)
                        continue
                    u, v = (
                        request.edge if isinstance(request, TraceOp) else request
                    )
                    if not edge_admissible(u, v):
                        invalid += 1
                        rejected += 1
                        shed_reasons["invalid"] += 1
                        if tracing:
                            tracer.instant(
                                "service.shed", "service",
                                reason="invalid", cycle=cycle,
                            )
                        continue
                    if faults_on and degraded_shed:
                        # Shed-mode degradation starts at the front door: a
                        # read for a fully-down shard is turned away with
                        # its own reason code instead of queueing.
                        shard_id = router.shard_of_edge(u, v)
                        if serving_replica(shard_id) is None:
                            rejected += 1
                            shed_reasons["degraded"] += 1
                            fstats.degraded_sheds += 1
                            if tracing:
                                tracer.instant(
                                    "service.shed", "service",
                                    reason="degraded", cycle=cycle,
                                )
                            continue
                    if len(queue) >= depth_limit:
                        rejected += 1
                        shed_reasons["overload"] += 1
                        if tracing:
                            tracer.instant(
                                "service.shed", "service",
                                reason="overload", cycle=cycle,
                            )
                        continue
                    seq += 1
                    queue.append(_Pending(seq, u, v, clock()))
                    admitted += 1
                if len(queue) > max_depth_seen:
                    max_depth_seen = len(queue)

                # ---- dispatch: FIFO batches up to the in-flight bound, with
                # writes serialized ahead of the reads that follow them
                write_blocked = False
                while queue:
                    if queue[0].op != "query":
                        if try_apply_write(queue[0]):
                            queue.popleft()
                            continue
                        write_blocked = True
                        fstats.blocked_write_cycles += 1
                        if tracing:
                            tracer.instant(
                                "service.write_blocked", "fault", cycle=cycle
                            )
                        break
                    if len(inflight) >= max_inflight:
                        break
                    batch: List[_Pending] = []
                    while (
                        queue
                        and len(batch) < batch_size
                        and queue[0].op == "query"
                    ):
                        batch.append(queue.popleft())
                    batches += 1
                    if coalesce:
                        parts = [
                            submit_part(shard_id, group, positions, single=False)
                            for shard_id, group, positions in pool.partition(
                                [(req.u, req.v) for req in batch]
                            )
                        ]
                    else:
                        parts = [
                            submit_part(
                                router.shard_of_edge(req.u, req.v),
                                [(req.u, req.v)],
                                [position],
                                single=True,
                            )
                            for position, req in enumerate(batch)
                        ]
                    span = None
                    if tracing:
                        span = tracer.begin(
                            "service.batch",
                            "service",
                            cycle=cycle,
                            batch=batches,
                            size=len(batch),
                            parts=len(parts),
                        )
                    inflight.append(_InflightBatch(batch, parts, span))

                # ---- complete: resolve the oldest batch, in dispatch order
                if inflight and (
                    len(inflight) >= max_inflight or (exhausted and not queue)
                ):
                    complete_oldest()

                # ---- recovery fast-forward: a blocked write with nothing
                # else to do — jump to the injector's next fault transition
                # instead of spinning one cycle at a time.  Finite fault
                # durations guarantee a transition exists, so the barrier
                # always releases and the loop always terminates.
                if write_blocked and exhausted and not inflight:
                    target = injector.next_transition_after(cycle)
                    if target is not None and target > cycle + 1:
                        cycle = target - 1
        duration = clock() - started

        report = ServiceReport(
            algorithm=pool.algorithm,
            workload=workload.kind,
            num_shards=num_shards,
            routing=config.routing,
            batch_size=batch_size,
            coalesced=coalesce,
            offered=offered,
            admitted=admitted,
            rejected=rejected,
            served=served,
            in_spanner=in_spanner,
            duration_s=duration,
            batches=batches,
            max_queue_depth_seen=max_depth_seen,
            latency=latency,
            probe_stats=probe_stats,
            shard_reports=pool.reports(since=shard_baseline),
            executor=config.executor,
            max_inflight=max_inflight,
            mutations=mutations_applied,
            replication=replication,
        )
        if invalid:
            report.extras["invalid_requests"] = invalid
        if mutations_applied:
            report.extras["graph_epoch"] = self.graph.epoch
        if rejected:
            report.extras["shed_reasons"] = dict(shed_reasons)
        if faults_on:
            report.faults = fstats.as_dict()
        return report


def serve_workload(
    graph: Graph,
    lca_factory: Callable[[Graph], SpannerLCA],
    workload: Workload,
    config: Optional[ServiceConfig] = None,
) -> ServiceReport:
    """One-shot convenience wrapper: build an engine, run one workload."""
    return ServiceEngine(graph, lca_factory, config).run(workload)
