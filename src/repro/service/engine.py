"""Request scheduler: bounded queue, admission control, concurrent shards.

The engine turns a :class:`~repro.service.workload.Workload` (an open-loop
arrival stream) into served answers through a
:class:`~repro.service.shards.ShardedOraclePool`, in repeated cycles:

1. **Ingest** — pull up to ``arrival_burst`` requests from the stream.
   Each arrival passes admission control: requests for pairs that are not
   edges of ``G`` and requests arriving while the queue is at
   ``max_queue_depth`` are rejected (counted, never served).  Admitted
   requests are stamped with their arrival time.
2. **Dispatch** — pop up to ``batch_size`` requests (FIFO) and submit the
   batch to the shard workers as futures.  With ``coalesce=True`` the
   router partitions the batch by owning shard and each shard group becomes
   one future on that shard's pinned worker — with the ``thread`` executor
   the groups execute *concurrently*, one worker per shard, while each
   shard's memo state stays single-threaded.  With ``coalesce=False`` every
   request is its own future on its owner's worker (the unbatched
   baseline).  Up to ``max_inflight`` dispatched batches may be in flight
   before the engine waits on the oldest.
3. **Complete** — resolve the oldest batch's futures, stamp completion,
   record per-request latency (completion − arrival, so queueing delay is
   included), feed answers back to the workload (the adaptive kind steers
   on them), and accumulate telemetry.  Batches complete in dispatch order,
   so the request log is deterministic for a given stream regardless of the
   executor.

Setting ``arrival_burst > batch_size`` models an overloaded ingress: the
queue fills, admission control starts shedding, and the latency percentiles
show the queueing delay — the knobs a load-shedding study needs.  The
admission *rule* (reject non-edges; reject at ``max_queue_depth``) never
changes, and the *executor* is invisible to it: for a fixed
``max_inflight`` the queue passes through exactly the same states whether
shards run inline or on worker threads.  ``max_inflight`` itself, however,
is a scheduling knob like ``batch_size``: a deeper pipeline pops more
batches per cycle, so under overload the queue sits lower and fewer
arrivals are shed — deterministically, but not identically to depth 1.

Everything is deterministic given (graph, seed, workload): answers are pure
functions of ``(graph, seed, query)``, so scheduling, sharding, batching and
the executor can only change *wall-clock* numbers, never answers or
per-request probe totals.  (One scheduling-visible caveat: with
``max_inflight > 1`` the *adaptive* workload sees answer feedback one batch
later than it would serially, which steers its stream differently — still
deterministically.  Open-loop kinds are unaffected.)
``tests/test_service_equivalence.py`` and ``tests/test_service_parallel.py``
pin exactly that.

Every timestamp the engine records flows through the injected ``clock``
(arrival stamps, completion stamps, run duration) — no code path reads
``time.perf_counter`` directly once a clock is supplied, so latency tests
run on fully deterministic synthetic clocks.

The write path (mutating workloads)
-----------------------------------

Workloads may emit graph *mutations* (``TraceOp`` records with op "add" /
"remove" — the ``churn`` kind, or a replayed mixed trace).  Writes obey
three rules that keep the run deterministic and the shared graph safe:

1. **Never shed** — a write enters the queue regardless of depth (the rest
   of the stream is only meaningful if every write applies exactly once, in
   order).  Read admission accounts for queued-but-unapplied writes: a read
   of an edge a queued write will create is admitted, one a queued write
   will delete is rejected — validity is judged against the state the read
   will execute under, not the current graph.
2. **Barrier semantics** — when a write reaches the queue head, every
   in-flight read batch is completed first, then the owning shard's worker
   applies the mutation synchronously; reads queued behind it dispatch
   afterwards.  No shard worker ever reads the graph while it changes.
3. **Lazy cross-shard invalidation** — the mutation bumps vertex epochs on
   the shared graph; sibling shards discard stale memo entries on their
   next lookup (see :mod:`repro.core.cache`), so a write costs O(1) plus
   exactly the recomputation the affected queries actually need.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Tuple

from ..core.ids import canonical_edge
from ..core.lca import SpannerLCA
from ..core.probes import ProbeStatistics
from ..exec import PINNED_BACKENDS, PinnedWorkers
from ..graphs.graph import Graph
from .metrics import LatencyStats, ServiceReport
from .shards import ROUTING_POLICIES, ShardedOraclePool
from .trace import TraceOp
from .workload import Workload

Edge = Tuple[int, int]


@dataclass
class ServiceConfig:
    """Tuning knobs of the query service (answers never depend on them)."""

    num_shards: int = 1
    routing: str = "hash"
    batch_size: int = 32
    max_queue_depth: int = 1024
    #: Arrivals ingested per scheduling cycle; defaults to ``batch_size``
    #: (steady state).  Larger values model ingress overload and exercise
    #: admission control.
    arrival_burst: Optional[int] = None
    #: ``True`` — group each dispatched batch by shard and stream it
    #: (the fast path); ``False`` — serve request by request (baseline).
    coalesce: bool = True
    #: Keep a per-request :class:`RequestRecord` log on the engine
    #: (equivalence tests replay it; disable for pure throughput runs).
    record: bool = True
    #: Shard-worker backend: "serial" executes submissions inline (the
    #: reference path), "thread" gives every shard a dedicated worker thread
    #: so shard groups of a batch execute concurrently.
    executor: str = "serial"
    #: Worker-thread cap for the "thread" executor (default: one per shard).
    #: Fewer workers than shards pin several shards to one thread — each
    #: shard still executes single-threaded.
    workers: Optional[int] = None
    #: Dispatched-but-uncompleted batch limit (pipelining depth).  1 keeps
    #: the classic dispatch→complete lockstep; higher values overlap batch
    #: N+1's dispatch with batch N's execution on threaded workers.
    max_inflight: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; choices: {ROUTING_POLICIES}"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.arrival_burst is not None and self.arrival_burst < 1:
            raise ValueError("arrival_burst must be >= 1")
        if self.executor not in PINNED_BACKENDS:
            raise ValueError(
                f"unknown service executor {self.executor!r}; "
                f"choices: {PINNED_BACKENDS} (shard memo state lives "
                "in-process, so the service runs on serial or thread workers; "
                "the process backend applies to offline materialization)"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")

    @property
    def effective_burst(self) -> int:
        return self.batch_size if self.arrival_burst is None else self.arrival_burst


class RequestRecord(NamedTuple):
    """One served request, as logged by the engine (replayable)."""

    seq: int
    u: int
    v: int
    in_spanner: bool
    probe_total: int
    latency_s: float


class _Pending(NamedTuple):
    seq: int
    u: int
    v: int
    arrival_s: float
    op: str = "query"


class _InflightBatch(NamedTuple):
    """A dispatched batch: its requests plus one future per shard group."""

    requests: List[_Pending]
    parts: List[Tuple[object, List[int]]]  # (future, batch positions)


class ServiceEngine:
    """Drives one workload run against a sharded oracle pool.

    Parameters
    ----------
    graph:
        The input graph (shared by every shard, read-only).
    lca_factory:
        ``graph -> SpannerLCA`` factory with the seed baked in; one instance
        is created per shard.
    config:
        Scheduler and pool knobs (:class:`ServiceConfig`).
    """

    def __init__(
        self,
        graph: Graph,
        lca_factory: Callable[[Graph], SpannerLCA],
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else ServiceConfig()
        self.pool = ShardedOraclePool(
            graph,
            lca_factory,
            num_shards=self.config.num_shards,
            routing=self.config.routing,
        )
        #: Per-request log of the most recent :meth:`run` (when
        #: ``config.record``); replayed by the equivalence tests.
        self.records: List[RequestRecord] = []

    def run(self, workload: Workload, clock=time.perf_counter) -> ServiceReport:
        """Serve the whole workload; returns the telemetry report.

        ``clock`` is injectable for tests; it must be monotone.  All
        recorded timestamps (arrival, completion, duration) come from it.
        """
        config = self.config
        pool = self.pool
        shards = pool.shards
        router = pool.router
        has_edge = self.graph.has_edge
        burst = config.effective_burst
        batch_size = config.batch_size
        depth_limit = config.max_queue_depth
        coalesce = config.coalesce
        max_inflight = config.max_inflight

        queue: Deque[_Pending] = deque()
        inflight: Deque[_InflightBatch] = deque()
        records: List[RequestRecord] = []
        self.records = records
        latency = LatencyStats()
        probe_stats = ProbeStatistics()
        offered = admitted = rejected = invalid = served = in_spanner = 0
        mutations_applied = 0
        batches = 0
        max_depth_seen = 0
        seq = 0
        exhausted = False
        # Queued-but-unapplied writes, per canonical edge in queue order.
        # Admission checks a query's validity against the graph state it
        # will *execute* under (FIFO order guarantees every earlier queued
        # write lands first), not the current graph: the *last* queued write
        # for an edge decides, and applying one write only retires that
        # write — markers of later still-queued writes on the same edge
        # survive.
        pending_writes: Dict[Edge, Deque[str]] = {}
        # Shard telemetry is lifetime-scoped (an engine can run several
        # workloads); baseline it so the report only covers this run.
        shard_baseline = pool.telemetry()

        def edge_admissible(u: int, v: int) -> bool:
            key = canonical_edge(u, v)
            queued = pending_writes.get(key)
            if queued:
                return queued[-1] == "add"
            return has_edge(u, v)

        started = clock()
        with PinnedWorkers(
            pool.num_shards, config.executor, config.workers
        ) as workers:

            def complete_oldest() -> None:
                nonlocal served, in_spanner
                batch, parts = inflight.popleft()
                outcomes: List[Tuple[bool, int]] = [None] * len(batch)  # type: ignore[list-item]
                stamps: List[float] = [0.0] * len(batch)
                if coalesce:
                    # A coalesced batch completes as a unit: one stamp
                    # once every shard group has resolved.
                    for future, positions in parts:
                        result = future.result()
                        for position, answer, total in zip(
                            positions, result.answers, result.probe_totals
                        ):
                            outcomes[position] = (answer, total)
                    done = clock()
                    stamps = [done] * len(batch)
                else:
                    # The unbatched baseline stamps each request as its
                    # own future resolves (in batch order), preserving
                    # the classic per-request completion times.
                    for future, positions in parts:
                        outcomes[positions[0]] = future.result()
                        stamps[positions[0]] = clock()
                for req, (answer, probes), done in zip(batch, outcomes, stamps):
                    served += 1
                    if answer:
                        in_spanner += 1
                    elapsed = done - req.arrival_s
                    latency.add(elapsed)
                    probe_stats.add(probes)
                    workload.observe((req.u, req.v), answer)
                    if config.record:
                        records.append(
                            RequestRecord(
                                req.seq, req.u, req.v, answer, probes, elapsed
                            )
                        )

            def apply_write(write: _Pending) -> None:
                # Writes are scheduling barriers: every dispatched read batch
                # resolves first (so no shard worker reads the graph while it
                # changes), then the owning shard's worker applies the
                # mutation synchronously.
                nonlocal mutations_applied
                while inflight:
                    complete_oldest()
                shard_id = router.shard_of_edge(write.u, write.v)
                workers.submit(
                    shard_id,
                    shards[shard_id].apply_mutation,
                    write.op,
                    write.u,
                    write.v,
                ).result()
                key = canonical_edge(write.u, write.v)
                queued = pending_writes.get(key)
                if queued:
                    queued.popleft()
                    if not queued:
                        del pending_writes[key]
                mutations_applied += 1

            while not exhausted or queue or inflight:
                # ---- ingest: up to `burst` arrivals through admission control
                arrivals = 0
                while arrivals < burst and not exhausted:
                    request = workload.next_request()
                    if request is None:
                        exhausted = True
                        break
                    arrivals += 1
                    offered += 1
                    if isinstance(request, TraceOp) and request.is_mutation:
                        # Writes are never shed: the rest of the stream (the
                        # workload's internal edge mirror, later reads, later
                        # writes) is only valid if every write applies
                        # exactly once, in order.
                        seq += 1
                        queue.append(
                            _Pending(seq, request.u, request.v, clock(), request.op)
                        )
                        key = canonical_edge(request.u, request.v)
                        pending_writes.setdefault(key, deque()).append(request.op)
                        continue
                    u, v = (
                        request.edge if isinstance(request, TraceOp) else request
                    )
                    if not edge_admissible(u, v):
                        invalid += 1
                        rejected += 1
                        continue
                    if len(queue) >= depth_limit:
                        rejected += 1
                        continue
                    seq += 1
                    queue.append(_Pending(seq, u, v, clock()))
                    admitted += 1
                if len(queue) > max_depth_seen:
                    max_depth_seen = len(queue)

                # ---- dispatch: FIFO batches up to the in-flight bound, with
                # writes serialized ahead of the reads that follow them
                while queue:
                    if queue[0].op != "query":
                        apply_write(queue.popleft())
                        continue
                    if len(inflight) >= max_inflight:
                        break
                    batch: List[_Pending] = []
                    while (
                        queue
                        and len(batch) < batch_size
                        and queue[0].op == "query"
                    ):
                        batch.append(queue.popleft())
                    batches += 1
                    if coalesce:
                        parts = [
                            (
                                workers.submit(
                                    shard_id,
                                    shards[shard_id].serve_batch,
                                    group,
                                    False,
                                ),
                                positions,
                            )
                            for shard_id, group, positions in pool.partition(
                                [(req.u, req.v) for req in batch]
                            )
                        ]
                    else:
                        parts = []
                        for position, req in enumerate(batch):
                            shard_id = router.shard_of_edge(req.u, req.v)
                            parts.append(
                                (
                                    workers.submit(
                                        shard_id,
                                        shards[shard_id].serve_one,
                                        req.u,
                                        req.v,
                                    ),
                                    [position],
                                )
                            )
                    inflight.append(_InflightBatch(batch, parts))

                # ---- complete: resolve the oldest batch, in dispatch order
                if inflight and (
                    len(inflight) >= max_inflight or (exhausted and not queue)
                ):
                    complete_oldest()
        duration = clock() - started

        report = ServiceReport(
            algorithm=pool.algorithm,
            workload=workload.kind,
            num_shards=config.num_shards,
            routing=config.routing,
            batch_size=batch_size,
            coalesced=coalesce,
            offered=offered,
            admitted=admitted,
            rejected=rejected,
            served=served,
            in_spanner=in_spanner,
            duration_s=duration,
            batches=batches,
            max_queue_depth_seen=max_depth_seen,
            latency=latency,
            probe_stats=probe_stats,
            shard_reports=pool.reports(since=shard_baseline),
            executor=config.executor,
            max_inflight=max_inflight,
            mutations=mutations_applied,
        )
        if invalid:
            report.extras["invalid_requests"] = invalid
        if mutations_applied:
            report.extras["graph_epoch"] = self.graph.epoch
        return report


def serve_workload(
    graph: Graph,
    lca_factory: Callable[[Graph], SpannerLCA],
    workload: Workload,
    config: Optional[ServiceConfig] = None,
) -> ServiceReport:
    """One-shot convenience wrapper: build an engine, run one workload."""
    return ServiceEngine(graph, lca_factory, config).run(workload)
