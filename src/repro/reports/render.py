"""Report generator: stored scenario payloads → paper-style Markdown tables.

The rendered report mirrors the tables the paper's experimental sections
would show, built only from the deterministic payloads the store holds:

* **Scenario inventory** — what ran, on which axes.
* **Probe complexity vs n** — per-query probe totals (max / mean / p50 /
  p95) and per-kind counts for every scenario × size, the Table 4/5 shape.
* **Spanner size vs stretch parameter** — |H| against n next to the
  declared stretch bound, the Table 1 shape.
* **Stretch certificates** — measured stretch against the declared bound.
* **Service latency percentiles** — virtual-time p50/p90/p95/p99 per
  scenario workload (ticks of the deterministic scheduler clock, reported
  as ms), plus throughput-shaped counters (served / rejected / batches).
* **Fault tolerance** — availability and fault-plane counters (failovers,
  retries, timeouts, degraded answers/sheds) for every scenario that ran
  with a ``[scenario.faults]`` chaos plan.
* **Trace summary** — per-(category, span) counts and tracer-tick totals of
  the service phase's deterministic span stream, for every scenario with a
  ``[scenario.observability]`` table.
* **Probe attribution** — flame-style per-kernel-phase probe breakdown
  (bfs / voronoi / neighbor-scan, plus the unattributed residual) and the
  per-cache-outcome table (cold / memo-hit / epoch-invalidated).

Rendering is a pure function of the payloads: rows are sorted by scenario
name (then size), floats are formatted by the shared table formatter, and
no environment data or timestamps enter the output — two runs of the same
specs render byte-identical Markdown.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.tables import format_markdown_table

#: Section order of the rendered report.
REPORT_TITLE = "# Scenario report"


def _sorted_results(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    return sorted(results, key=lambda payload: str(payload.get("name", "")))


def _inventory_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        spec = payload.get("spec", {})
        graph = spec.get("graph", {})
        workload = spec.get("workload") or {}
        materialize = spec.get("materialize", {})
        rows.append(
            {
                "scenario": payload.get("name"),
                "algorithm": spec.get("algorithm"),
                "family": graph.get("family"),
                "backend": graph.get("backend"),
                "sizes": ", ".join(str(n) for n in graph.get("sizes", [])),
                "engine": materialize.get("executor") or materialize.get("mode"),
                "workload": workload.get("kind", "-"),
                "churn ops": (spec.get("mutations") or {}).get("ops", 0),
                "smoke": bool(payload.get("smoke")),
            }
        )
    return rows


def _probe_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        spec = payload.get("spec", {})
        backend = spec.get("graph", {}).get("backend")
        for size in payload.get("sizes", []):
            probes = size.get("probes", {})
            kinds = size.get("probe_kinds", {})
            rows.append(
                {
                    "scenario": payload.get("name"),
                    "algorithm": spec.get("algorithm"),
                    "backend": backend,
                    "n": size.get("n"),
                    "m": size.get("m"),
                    "max": probes.get("max"),
                    "mean": probes.get("mean"),
                    "p50": probes.get("p50"),
                    "p95": probes.get("p95"),
                    "neighbor": kinds.get("neighbor"),
                    "degree": kinds.get("degree"),
                    "adjacency": kinds.get("adjacency"),
                }
            )
    return rows


def _size_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        spec = payload.get("spec", {})
        for size in payload.get("sizes", []):
            n = size.get("n") or 0
            spanner_edges = size.get("spanner_edges") or 0
            rows.append(
                {
                    "scenario": payload.get("name"),
                    "algorithm": spec.get("algorithm"),
                    "stretch bound": size.get("stretch_bound"),
                    "n": n,
                    "m": size.get("m"),
                    "|H|": spanner_edges,
                    "|H|/n": round(spanner_edges / n, 3) if n else None,
                    "kept": (
                        round(spanner_edges / size["m"], 3) if size.get("m") else None
                    ),
                }
            )
    return rows


def _stretch_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        spec = payload.get("spec", {})
        for size in payload.get("sizes", []):
            rows.append(
                {
                    "scenario": payload.get("name"),
                    "algorithm": spec.get("algorithm"),
                    "n": size.get("n"),
                    "stretch": size.get("stretch"),
                    "bound": size.get("stretch_bound"),
                    "within bound": size.get("stretch_ok"),
                    "connected": size.get("connected"),
                    "churn ops": size.get("mutations"),
                }
            )
    return rows


def _latency_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        service = payload.get("service")
        if not service:
            continue
        latency = service.get("latency", {})
        probes = service.get("probes", {})
        rows.append(
            {
                "scenario": payload.get("name"),
                "algorithm": service.get("algorithm"),
                "workload": service.get("workload"),
                "n": service.get("n"),
                "shards": service.get("num_shards"),
                "batch": service.get("batch_size"),
                "served": service.get("served"),
                "rejected": service.get("rejected"),
                "writes": service.get("mutations"),
                "p50 ms": latency.get("p50_ms"),
                "p90 ms": latency.get("p90_ms"),
                "p95 ms": latency.get("p95_ms"),
                "p99 ms": latency.get("p99_ms"),
                "probes/req": round(probes.get("mean", 0.0), 1),
                "hit rate": _hit_rate(service),
            }
        )
    return rows


def _fault_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        service = payload.get("service")
        if not service or not service.get("faults"):
            continue
        faults = service.get("faults", {})
        rows.append(
            {
                "scenario": payload.get("name"),
                "replicas": service.get("replication", 1),
                "availability": service.get("availability"),
                "crashes": faults.get("crashes"),
                "shard losses": faults.get("shard_losses"),
                "failovers": faults.get("failovers"),
                "retries": faults.get("retries"),
                "timeouts": faults.get("timeouts"),
                "degraded ans": faults.get("degraded_answers"),
                "degraded shed": faults.get("degraded_sheds"),
                "blocked writes": faults.get("blocked_write_cycles"),
            }
        )
    return rows


def _observability(payload: Dict[str, object]) -> Dict[str, object]:
    service = payload.get("service")
    if not service:
        return {}
    return service.get("observability") or {}


def _trace_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        obs = _observability(payload)
        trace = obs.get("trace")
        if not trace:
            continue
        for entry in trace.get("summary", []):
            rows.append(
                {
                    "scenario": payload.get("name"),
                    "cat": entry.get("cat"),
                    "span": entry.get("name"),
                    "count": entry.get("count"),
                    "ticks": entry.get("ticks"),
                    "max ticks": entry.get("max_ticks"),
                    "dropped": trace.get("dropped", 0),
                }
            )
    return rows


def _phase_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        obs = _observability(payload)
        profile = obs.get("profile")
        if not profile:
            continue
        phases = profile.get("phases", {})
        total = (
            obs.get("metrics", {})
            .get("metrics", {})
            .get("probes.total", {})
            .get("value")
        )
        attributed = sum(entry.get("total", 0) for entry in phases.values())
        ordered = sorted(
            phases.items(), key=lambda item: (-item[1].get("total", 0), item[0])
        )
        for label, entry in ordered:
            rows.append(
                {
                    "scenario": payload.get("name"),
                    "phase": label,
                    "calls": entry.get("calls"),
                    "neighbor": entry.get("neighbor"),
                    "degree": entry.get("degree"),
                    "adjacency": entry.get("adjacency"),
                    "probes": entry.get("total"),
                    "share": (
                        round(entry.get("total", 0) / total, 3) if total else None
                    ),
                }
            )
        if total:
            rows.append(
                {
                    "scenario": payload.get("name"),
                    "phase": "other",
                    "calls": None,
                    "neighbor": None,
                    "degree": None,
                    "adjacency": None,
                    "probes": max(0, int(total) - attributed),
                    "share": round(max(0, int(total) - attributed) / total, 3),
                }
            )
    return rows


def _outcome_rows(results: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for payload in results:
        obs = _observability(payload)
        profile = obs.get("profile")
        if not profile:
            continue
        for outcome, entry in profile.get("outcomes", {}).items():
            rows.append(
                {
                    "scenario": payload.get("name"),
                    "outcome": outcome,
                    "calls": entry.get("calls"),
                    "probes": entry.get("probes"),
                }
            )
        rows.append(
            {
                "scenario": payload.get("name"),
                "outcome": "invalidations",
                "calls": profile.get("invalidations", 0),
                "probes": None,
            }
        )
    return rows


def _hit_rate(service: Dict[str, object]) -> Optional[float]:
    shards = service.get("shards") or []
    hits = sum(shard.get("cache_hits", 0) for shard in shards)
    lookups = hits + sum(shard.get("cache_misses", 0) for shard in shards)
    return round(hits / lookups, 3) if lookups else None


def render_report(results: Sequence[Dict[str, object]]) -> str:
    """Render stored scenario payloads as one Markdown document."""
    results = _sorted_results(results)
    sections = [
        REPORT_TITLE,
        "Generated by `repro report render` from the deterministic scenario "
        "payloads under the results directory; see `docs/reports.md`. "
        "Latency columns are virtual time (scheduler ticks reported as ms), "
        "so every number in this file is reproducible bit-for-bit from the "
        "specs and seeds alone.",
        format_markdown_table(_inventory_rows(results), title="Scenarios", level=2),
        format_markdown_table(
            _probe_rows(results), title="Probe complexity vs n", level=2
        ),
        format_markdown_table(
            _size_rows(results), title="Spanner size vs stretch parameter", level=2
        ),
        format_markdown_table(
            _stretch_rows(results), title="Stretch certificates", level=2
        ),
        format_markdown_table(
            _latency_rows(results),
            title="Service latency percentiles (virtual time)",
            level=2,
        ),
        format_markdown_table(
            _fault_rows(results), title="Fault tolerance (chaos scenarios)", level=2
        ),
        format_markdown_table(
            _trace_rows(results),
            title="Trace summary (observability scenarios)",
            level=2,
        ),
        format_markdown_table(
            _phase_rows(results),
            title="Probe attribution by kernel phase",
            level=2,
        ),
        format_markdown_table(
            _outcome_rows(results),
            title="Probe attribution by cache outcome",
            level=2,
        ),
    ]
    return "\n\n".join(sections) + "\n"
