"""Scenario runner: one :class:`ScenarioSpec` in, one :class:`ScenarioResult` out.

The runner composes the machinery the planes already expose — graph families
(:mod:`repro.graphs.generators`), the LCA registry, the offline engines
behind :meth:`~repro.core.lca.SpannerLCA.materialize`, the verification
harness (:mod:`repro.analysis.harness`) and the online service
(:mod:`repro.service.engine`) — and reduces a run to plain, JSON-serializable
data.

Two properties the report generator depends on:

**Determinism.**  Everything in a :class:`ScenarioResult` is a pure function
of the spec: graphs, seeds and workloads are constructed exactly as declared,
and the service phase runs on a virtual :class:`TickClock` instead of a
wall clock, so latency percentiles measure *scheduling structure* (queueing
and batching delay in ticks) rather than host speed.  Running the same spec
twice yields byte-identical payloads — the acceptance test renders the
Markdown report twice and compares bytes.

**Faithful accounting.**  Probe totals and per-kind counts come from the
same cold-schedule accounting contract every other harness uses (see
:mod:`repro.core.cache`): the executor, query mode and backend axes change
wall-clock time only, never the reported probe numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..analysis.harness import evaluate_materialized
from ..core.ids import canonical_edge
from ..core.registry import create
from ..graphs.generators import build_family
from ..graphs.graph import Graph
from ..obs import ProbeProfiler, SpanTracer, collect_run_metrics, summarize_spans
from ..service import ServiceConfig, ServiceEngine, make_workload
from .spec import ScenarioSpec

Edge = Tuple[int, int]

#: Caps applied by :func:`spec_for_smoke` (CI-sized runs).
SMOKE_MAX_SIZE = 120
SMOKE_MAX_REQUESTS = 150
SMOKE_MAX_MUTATIONS = 10
#: A smoke run only lives for a handful of scheduler cycles; faults drawn
#: from a full-size horizon would all land after it ends, so the storm is
#: compressed into the cycles the run actually has.
SMOKE_MAX_FAULT_HORIZON = 4


class TickClock:
    """A deterministic monotone clock: every reading advances one tick.

    Injected into :meth:`repro.service.engine.ServiceEngine.run` so service
    latency percentiles are a function of the schedule (how many stamps —
    i.e. how much queueing and batching — separate a request's admission
    from its completion), not of the host.  One tick is reported as one
    millisecond, which keeps the rendered percentile columns readable.
    """

    def __init__(self, tick_s: float = 1e-3) -> None:
        self._now = 0.0
        self._tick = float(tick_s)

    def __call__(self) -> float:
        self._now += self._tick
        return self._now


def spec_for_smoke(spec: ScenarioSpec) -> ScenarioSpec:
    """Shrink a scenario to CI size (smallest size, capped requests/churn)."""
    smallest = min(spec.graph.sizes)
    graph = replace(spec.graph, sizes=(min(smallest, SMOKE_MAX_SIZE),))
    mutations = replace(spec.mutations, ops=min(spec.mutations.ops, SMOKE_MAX_MUTATIONS))
    workload = spec.workload
    if workload is not None:
        workload = replace(workload, requests=min(workload.requests, SMOKE_MAX_REQUESTS))
    faults = spec.faults
    if faults is not None:
        faults = replace(faults, horizon=min(faults.horizon, SMOKE_MAX_FAULT_HORIZON))
    return replace(spec, graph=graph, mutations=mutations, workload=workload, faults=faults)


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass
class SizeResult:
    """Offline measurements for one graph size of a scenario."""

    n: int
    m: int
    spanner_edges: int
    density: float
    stretch: Optional[float]
    stretch_bound: Optional[int]
    stretch_ok: bool
    connected: bool
    probes: Dict[str, object]
    probe_kinds: Dict[str, int]
    mutations: int
    graph_epoch: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "m": self.m,
            "spanner_edges": self.spanner_edges,
            "density": self.density,
            "stretch": self.stretch,
            "stretch_bound": self.stretch_bound,
            "stretch_ok": self.stretch_ok,
            "connected": self.connected,
            "probes": dict(self.probes),
            "probe_kinds": dict(self.probe_kinds),
            "mutations": self.mutations,
            "graph_epoch": self.graph_epoch,
        }


@dataclass
class ScenarioResult:
    """Everything one scenario run measured, as plain data."""

    spec: ScenarioSpec
    smoke: bool
    sizes: List[SizeResult] = field(default_factory=list)
    #: ``ServiceReport.as_dict()`` of the service phase (virtual-time
    #: latencies), plus the graph size it ran on; ``None`` without a
    #: workload section.
    service: Optional[Dict[str, object]] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def as_dict(self) -> Dict[str, object]:
        """The deterministic payload (what the store versions and render reads)."""
        return {
            "schema": 1,
            "name": self.spec.name,
            "spec": self.spec.as_dict(),
            "smoke": self.smoke,
            "sizes": [size.as_dict() for size in self.sizes],
            "service": dict(self.service) if self.service is not None else None,
        }


# --------------------------------------------------------------------------- #
# Churn generation
# --------------------------------------------------------------------------- #
def churn_ops(graph: Graph, count: int, seed: int) -> List[Tuple[str, int, int]]:
    """A deterministic burst of valid mutations against ``graph``.

    Ops are generated against a mirror of the edge set, so every remove hits
    an existing edge and every add creates a new one — the sequence is valid
    when applied in order, whatever the graph backend.
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    edges = sorted(canonical_edge(u, v) for (u, v) in graph.edges())
    edge_set = set(edges)
    ops: List[Tuple[str, int, int]] = []
    for _ in range(count):
        remove = bool(edges) and (len(vertices) < 2 or rng.random() < 0.5)
        if remove:
            index = rng.randrange(len(edges))
            (u, v) = edges[index]
            edges[index] = edges[-1]
            edges.pop()
            edge_set.discard((u, v))
            ops.append(("remove", u, v))
        else:
            for _attempt in range(64):
                u, v = rng.sample(vertices, 2)
                edge = canonical_edge(u, v)
                if edge not in edge_set:
                    edges.append(edge)
                    edge_set.add(edge)
                    ops.append(("add", edge[0], edge[1]))
                    break
            # A graph this close to complete simply yields fewer adds.
    return ops


# --------------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------------- #
def _build_graph(spec: ScenarioSpec, n: int) -> Graph:
    graph = build_family(
        spec.graph.family, n, density=spec.graph.density, seed=spec.graph.seed
    )
    return graph.to_backend(spec.graph.backend)


def _run_size(spec: ScenarioSpec, n: int) -> SizeResult:
    graph = _build_graph(spec, n)
    lca = create(spec.algorithm, graph, seed=spec.seed, **spec.algorithm_options)
    if spec.materialize.memo_cap is not None:
        # Bounded-memory oracle mode: answers and probe accounting are
        # bit-identical to the unbounded cache, so result tables cannot
        # depend on the cap — only resident memory does.
        lca.set_memo_cap(spec.materialize.memo_cap)
    applied = 0
    if spec.mutations.ops:
        applied = lca.apply_mutations(
            churn_ops(graph, spec.mutations.ops, spec.mutations.seed)
        )
    before = lca.probe_counter.snapshot()
    materialize = spec.materialize
    if materialize.executor is not None:
        materialized = lca.materialize(
            executor=materialize.executor, workers=materialize.workers
        )
    else:
        materialized = lca.materialize(mode=materialize.mode)
    kinds = (lca.probe_counter.snapshot() - before).as_dict()
    report = evaluate_materialized(graph, materialized)
    stats = materialized.probe_stats
    return SizeResult(
        n=graph.num_vertices,
        m=graph.num_edges,
        spanner_edges=materialized.num_edges,
        density=round(report.density, 4),
        stretch=report.stretch.max_stretch,
        stretch_bound=report.stretch_bound,
        stretch_ok=report.stretch_ok,
        connected=report.connectivity_preserved,
        probes={
            "queries": stats.queries,
            "max": stats.max,
            "mean": round(stats.mean, 3),
            "p50": stats.percentile(50),
            "p95": stats.percentile(95),
            "total": stats.total,
        },
        probe_kinds=kinds,
        mutations=applied,
        graph_epoch=graph.epoch,
    )


def _run_service(spec: ScenarioSpec, tracer=None) -> Dict[str, object]:
    """The online phase: serve the declared workload on the largest size.

    With an ``[observability]`` table the run carries a tracer and/or a
    probe profiler (both pure observation — the report's numbers are
    unchanged) and the payload gains an ``observability`` block: trace
    summary, per-phase / per-outcome probe attribution, and one unified
    metrics snapshot.  A caller-supplied ``tracer`` (the trace-export path)
    replaces the internally built one.
    """
    assert spec.workload is not None
    n = max(spec.graph.sizes)
    graph = _build_graph(spec, n)
    workload = make_workload(
        spec.workload.kind,
        graph,
        num_requests=spec.workload.requests,
        seed=spec.workload.seed,
        **spec.workload.options(),
    )
    service = spec.service
    fault_plan = None
    if spec.faults is not None and spec.faults.total_events:
        fault_plan = spec.faults.to_plan(service.shards, service.replication)
    config = ServiceConfig(
        num_shards=service.shards,
        routing=service.routing,
        batch_size=service.batch_size,
        max_queue_depth=service.max_queue_depth,
        arrival_burst=service.arrival_burst,
        coalesce=service.coalesce,
        record=False,
        executor=service.executor,
        max_inflight=service.max_inflight,
        replication=service.replication,
        fault_plan=fault_plan,
        max_retries=service.max_retries,
        timeout_ticks=service.timeout_ticks,
        degraded_mode=service.degraded_mode,
        checkpoint_interval=service.checkpoint_interval,
    )
    engine = ServiceEngine(
        graph,
        lambda g: create(spec.algorithm, g, seed=spec.seed, **spec.algorithm_options),
        config,
    )
    obs = spec.observability
    profiler = ProbeProfiler() if obs is not None and obs.profile else None
    run_tracer = None
    if obs is not None and obs.trace:
        run_tracer = tracer if tracer is not None else SpanTracer(capacity=obs.capacity)
    report = engine.run(
        workload, clock=TickClock(), tracer=run_tracer, profiler=profiler
    )
    payload = report.as_dict()
    payload["n"] = graph.num_vertices
    payload["clock"] = "virtual-ticks"
    if obs is not None:
        observability: Dict[str, object] = {}
        if run_tracer is not None:
            observability["trace"] = {
                "spans": len(run_tracer.finished()),
                "dropped": run_tracer.dropped,
                "summary": summarize_spans(run_tracer),
            }
        if profiler is not None:
            observability["profile"] = profiler.as_dict()
        observability["metrics"] = collect_run_metrics(report, profiler).snapshot()
        payload["observability"] = observability
    return payload


def run_scenario(
    spec: ScenarioSpec, smoke: bool = False, tracer=None
) -> ScenarioResult:
    """Run one scenario end to end (offline sizes sweep + online phase).

    ``tracer`` (used by the trace-export CLI path and the determinism
    tests) hands the service phase an external span tracer; it only takes
    effect when the spec's ``[observability]`` table enables tracing.
    """
    if smoke:
        spec = spec_for_smoke(spec)
    result = ScenarioResult(spec=spec, smoke=smoke)
    for n in spec.graph.sizes:
        result.sizes.append(_run_size(spec, n))
    if spec.workload is not None:
        result.service = _run_service(spec, tracer=tracer)
    return result
