"""Experiment & reporting plane: declarative scenarios → paper-style reports.

Every other plane of the repository answers "can the system do X?"; this one
answers "show me".  A scenario spec (:mod:`repro.reports.spec`) declares one
point in the configuration space — graph family × spanner family × storage
backend × executor × workload × mutation churn — the runner
(:mod:`repro.reports.runner`) executes it deterministically through the
existing harness/service machinery, the store (:mod:`repro.reports.store`)
versions the resulting JSON next to an environment fingerprint, and the
renderer (:mod:`repro.reports.render`) turns stored results into the
Markdown tables the paper's experimental sections would show (probes vs n,
spanner size vs stretch parameter, stretch certificates, service latency
percentiles).

One command each::

    repro report run scenarios/            # run the curated suite
    repro report run scenarios/smoke.toml --smoke
    repro report render --out report.md

Determinism is the design invariant: results contain no wall-clock numbers
(the service phase runs on a virtual tick clock) and rendering is a pure
function of the stored payloads, so the same specs render byte-identical
reports on any host.
"""

from .render import render_report
from .runner import (
    ScenarioResult,
    SizeResult,
    TickClock,
    churn_ops,
    run_scenario,
    spec_for_smoke,
)
from .spec import (
    GraphSpec,
    MaterializeSpec,
    MutationSpec,
    ObservabilitySpec,
    ScenarioSpec,
    ServiceSpec,
    SpecError,
    WorkloadSpec,
    load_scenario_file,
    load_scenarios,
)
from .store import ResultStore, StoreError, environment_fingerprint, wall_timer

__all__ = [
    "GraphSpec",
    "MaterializeSpec",
    "MutationSpec",
    "ObservabilitySpec",
    "ScenarioSpec",
    "ServiceSpec",
    "SpecError",
    "WorkloadSpec",
    "load_scenario_file",
    "load_scenarios",
    "ScenarioResult",
    "SizeResult",
    "TickClock",
    "churn_ops",
    "run_scenario",
    "spec_for_smoke",
    "ResultStore",
    "StoreError",
    "environment_fingerprint",
    "render_report",
    "wall_timer",
]
