"""Declarative scenario specs: one TOML/JSON table per experiment.

A :class:`ScenarioSpec` names one point in the system's configuration space —
graph family × spanner family × storage backend × executor × workload ×
mutation churn — plus the seeds that make the run reproducible.  Spec files
are plain data (TOML via :mod:`tomllib`, or JSON), so the curated suite under
``scenarios/`` is reviewable, diffable and runnable with one command::

    repro report run scenarios/smoke.toml
    repro report render

A file holds either a single scenario (top-level keys) or a list of them
(``[[scenario]]`` tables in TOML, a ``{"scenario": [...]}`` array in JSON).
Validation happens eagerly at load time with precise error messages
(:class:`SpecError` carries the file and scenario name), so a typo in a spec
fails before any graph is built.

The sub-tables mirror the layers they configure:

``[scenario.graph]``
    family / sizes / density / backend / seed — resolved through the shared
    :data:`repro.graphs.FAMILY_BUILDERS` registry, so a spec and a
    ``repro generate`` command line mean the same graph.
``[scenario.materialize]``
    mode (cold/cached/batched) or executor + workers — the offline engine.
``[scenario.mutations]``
    a deterministic pre-materialization churn burst (count + seed),
    exercising epoch-based cache invalidation.
``[scenario.workload]`` / ``[scenario.service]``
    the online phase: workload kind/size/seed/options and the
    :class:`~repro.service.engine.ServiceConfig` knobs (including the
    fault-tolerance knobs: replication, retries, timeout, degraded mode).
``[scenario.faults]``
    a seeded chaos storm injected during the service phase — crash /
    shard-loss / slow / flaky counts over a cycle horizon, expanded into a
    deterministic :class:`~repro.faults.FaultPlan` at run time.
``[scenario.observability]``
    deterministic tracing and probe attribution for the service phase
    (:mod:`repro.obs`) — the result gains a trace summary, a per-phase /
    per-cache-outcome probe breakdown and one unified metrics snapshot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import ReproError
from ..exec import EXECUTOR_BACKENDS, PINNED_BACKENDS
from ..faults import FaultPlan
from ..graphs.generators import GRAPH_FAMILIES, STREAM_FAMILIES
from ..service.engine import DEGRADED_MODES
from ..service.shards import ROUTING_POLICIES
from ..service.workload import WORKLOAD_KINDS

#: Query-engine modes accepted by ``[scenario.materialize] mode``.
QUERY_MODES = ("cold", "cached", "batched")

#: Graph storage backends accepted by ``[scenario.graph] backend``.
GRAPH_BACKENDS = ("dict", "csr")


class SpecError(ReproError):
    """A scenario spec failed validation (carries file / scenario context)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _check_choice(value: str, choices: Sequence[str], what: str) -> str:
    _require(
        value in choices,
        f"{what} {value!r} is not one of {sorted(choices)}",
    )
    return value


@dataclass(frozen=True)
class GraphSpec:
    """The graph axis: a named family instantiated at one or more sizes."""

    family: str = "gnp"
    sizes: Tuple[int, ...] = (200,)
    density: float = 0.1
    seed: int = 1
    backend: str = "dict"

    def __post_init__(self) -> None:
        _check_choice(self.family, GRAPH_FAMILIES, "graph family")
        _check_choice(self.backend, GRAPH_BACKENDS, "graph backend")
        _require(len(self.sizes) >= 1, "graph sizes must be non-empty")
        _require(
            all(isinstance(n, int) and n >= 2 for n in self.sizes),
            f"graph sizes must be integers >= 2, got {list(self.sizes)}",
        )
        _require(self.density > 0, "graph density must be positive")
        if self.family in STREAM_FAMILIES:
            _require(
                self.backend == "csr",
                f"streaming family {self.family!r} builds straight into CSR "
                "arrays; backend must be \"csr\"",
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "sizes": list(self.sizes),
            "density": self.density,
            "seed": self.seed,
            "backend": self.backend,
        }


@dataclass(frozen=True)
class MaterializeSpec:
    """The offline-engine axis: query mode or parallel executor."""

    mode: str = "batched"
    executor: Optional[str] = None
    workers: Optional[int] = None
    memo_cap: Optional[int] = None

    def __post_init__(self) -> None:
        _check_choice(self.mode, QUERY_MODES, "materialize mode")
        if self.executor is not None:
            _check_choice(self.executor, tuple(EXECUTOR_BACKENDS), "executor")
            _require(
                self.mode == "batched",
                "an executor always runs the batched engine; drop mode or executor",
            )
        if self.workers is not None:
            _require(self.workers >= 1, "workers must be >= 1")
        if self.memo_cap is not None:
            _require(
                isinstance(self.memo_cap, int) and self.memo_cap >= 1,
                f"memo_cap must be an integer >= 1, got {self.memo_cap!r}",
            )
            _require(
                self.mode != "cold",
                "memo_cap bounds the cached engine; the cold mode has no "
                "memo to cap — drop one of them",
            )
            _require(
                self.executor is None,
                "memo_cap applies to the coordinator's cache only; chunk "
                "workers keep unbounded caches — drop executor or memo_cap",
            )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"mode": self.mode}
        if self.executor is not None:
            payload["executor"] = self.executor
        if self.workers is not None:
            payload["workers"] = self.workers
        if self.memo_cap is not None:
            payload["memo_cap"] = self.memo_cap
        return payload


@dataclass(frozen=True)
class MutationSpec:
    """A deterministic churn burst applied before materialization."""

    ops: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.ops >= 0, "mutation ops must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        return {"ops": self.ops, "seed": self.seed}


@dataclass(frozen=True)
class WorkloadSpec:
    """The online request stream served during the service phase."""

    kind: str = "uniform"
    requests: int = 500
    seed: int = 0
    #: Zipf skew exponent (``zipf`` only).
    skew: Optional[float] = None
    #: Write fraction (``churn`` only).
    write_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        _check_choice(self.kind, tuple(WORKLOAD_KINDS), "workload kind")
        _require(self.kind != "trace", "trace workloads need a recording; use the CLI")
        _require(self.requests >= 1, "workload requests must be >= 1")
        if self.skew is not None:
            _require(self.kind == "zipf", "skew only applies to the zipf workload")
        if self.write_ratio is not None:
            _require(
                self.kind == "churn", "write_ratio only applies to the churn workload"
            )
            _require(0.0 <= self.write_ratio <= 1.0, "write_ratio must be in [0, 1]")

    def options(self) -> Dict[str, object]:
        """Keyword options for :func:`repro.service.make_workload`."""
        options: Dict[str, object] = {}
        if self.skew is not None:
            options["skew"] = self.skew
        if self.write_ratio is not None:
            options["write_ratio"] = self.write_ratio
        return options

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "requests": self.requests,
            "seed": self.seed,
        }
        payload.update(self.options())
        return payload


@dataclass(frozen=True)
class ServiceSpec:
    """Engine knobs for the service phase (a ``ServiceConfig`` subset)."""

    shards: int = 2
    routing: str = "hash"
    batch_size: int = 32
    max_queue_depth: int = 1024
    arrival_burst: Optional[int] = None
    coalesce: bool = True
    executor: str = "serial"
    max_inflight: int = 1
    replication: int = 1
    max_retries: int = 2
    timeout_ticks: int = 64
    degraded_mode: str = "answer"
    checkpoint_interval: int = 8

    def __post_init__(self) -> None:
        _require(self.shards >= 1, "service shards must be >= 1")
        _check_choice(self.routing, tuple(ROUTING_POLICIES), "routing policy")
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.max_queue_depth >= 1, "max_queue_depth must be >= 1")
        if self.arrival_burst is not None:
            _require(self.arrival_burst >= 1, "arrival_burst must be >= 1")
        _check_choice(self.executor, tuple(PINNED_BACKENDS), "service executor")
        _require(self.max_inflight >= 1, "max_inflight must be >= 1")
        _require(self.replication >= 1, "replication must be >= 1")
        _require(self.max_retries >= 0, "max_retries must be >= 0")
        _require(self.timeout_ticks >= 1, "timeout_ticks must be >= 1")
        _check_choice(self.degraded_mode, tuple(DEGRADED_MODES), "degraded_mode")
        _require(self.checkpoint_interval >= 1, "checkpoint_interval must be >= 1")

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "shards": self.shards,
            "routing": self.routing,
            "batch_size": self.batch_size,
            "max_queue_depth": self.max_queue_depth,
            "coalesce": self.coalesce,
            "executor": self.executor,
            "max_inflight": self.max_inflight,
        }
        if self.arrival_burst is not None:
            payload["arrival_burst"] = self.arrival_burst
        if self.replication != 1:
            payload["replication"] = self.replication
        if self.max_retries != 2:
            payload["max_retries"] = self.max_retries
        if self.timeout_ticks != 64:
            payload["timeout_ticks"] = self.timeout_ticks
        if self.degraded_mode != "answer":
            payload["degraded_mode"] = self.degraded_mode
        if self.checkpoint_interval != 8:
            payload["checkpoint_interval"] = self.checkpoint_interval
        return payload


@dataclass(frozen=True)
class FaultSpec:
    """The chaos axis: a seeded fault storm over the service phase.

    Expands to :meth:`repro.faults.FaultPlan.generate` at run time — the
    spec stores the storm's *shape* (event counts, cycle horizon, outage
    duration, slow-batch delay) and its seed, so the schedule is a pure
    function of the spec plus the service topology (shards × replication).
    """

    seed: int = 0
    horizon: int = 64
    crashes: int = 0
    shard_losses: int = 0
    slow: int = 0
    flaky: int = 0
    duration: int = 4
    delay: int = 3
    count: int = 1

    def __post_init__(self) -> None:
        _require(self.horizon >= 1, "faults horizon must be >= 1")
        _require(self.crashes >= 0, "faults crashes must be >= 0")
        _require(self.shard_losses >= 0, "faults shard_losses must be >= 0")
        _require(self.slow >= 0, "faults slow must be >= 0")
        _require(self.flaky >= 0, "faults flaky must be >= 0")
        _require(self.duration >= 1, "faults duration must be >= 1")
        _require(self.delay >= 1, "faults delay must be >= 1")
        _require(self.count >= 1, "faults count must be >= 1")

    @property
    def total_events(self) -> int:
        return self.crashes + self.shard_losses + self.slow + self.flaky

    def to_plan(self, num_shards: int, replication: int) -> FaultPlan:
        """Expand into a deterministic plan for the given topology."""
        return FaultPlan.generate(
            seed=self.seed,
            num_shards=num_shards,
            replication=replication,
            horizon=self.horizon,
            crashes=self.crashes,
            shard_losses=self.shard_losses,
            slow=self.slow,
            flaky=self.flaky,
            duration=self.duration,
            delay=self.delay,
            count=self.count,
        )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"seed": self.seed, "horizon": self.horizon}
        for key in ("crashes", "shard_losses", "slow", "flaky"):
            value = getattr(self, key)
            if value:
                payload[key] = value
        if self.duration != 4:
            payload["duration"] = self.duration
        if self.delay != 3:
            payload["delay"] = self.delay
        if self.count != 1:
            payload["count"] = self.count
        return payload


@dataclass(frozen=True)
class ObservabilitySpec:
    """The observability axis: tracing + probe attribution for the run.

    Pure observation — enabling it never changes answers, probe totals or
    the virtual-clock latency numbers (the tracer keeps its own tick
    clock), so any scenario can turn it on without perturbing results.
    ``capacity`` bounds the tracer's span ring buffer.
    """

    trace: bool = True
    profile: bool = True
    capacity: int = 65536

    def __post_init__(self) -> None:
        _require(self.capacity >= 1, "observability capacity must be >= 1")
        _require(
            self.trace or self.profile,
            "an [observability] table must enable trace and/or profile",
        )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        if not self.trace:
            payload["trace"] = False
        if not self.profile:
            payload["profile"] = False
        if self.capacity != 65536:
            payload["capacity"] = self.capacity
        return payload


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: every axis the planes expose, as data."""

    name: str
    algorithm: str = "spanner3"
    seed: int = 7
    description: str = ""
    graph: GraphSpec = field(default_factory=GraphSpec)
    materialize: MaterializeSpec = field(default_factory=MaterializeSpec)
    mutations: MutationSpec = field(default_factory=MutationSpec)
    workload: Optional[WorkloadSpec] = None
    service: ServiceSpec = field(default_factory=ServiceSpec)
    #: Chaos storm injected during the service phase (needs a workload).
    faults: Optional[FaultSpec] = None
    #: Tracing / probe attribution for the service phase (needs a workload).
    observability: Optional[ObservabilitySpec] = None
    #: Extra keyword arguments for the LCA factory (e.g. ``stretch_parameter``
    #: for ``spannerk``).  Values must be JSON-serializable.
    algorithm_options: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario name must be non-empty")
        _require(
            all(c.isalnum() or c in "-_." for c in self.name),
            f"scenario name {self.name!r} may only contain [a-zA-Z0-9-_.] "
            "(it becomes a results filename)",
        )
        if self.faults is not None and self.faults.total_events:
            _require(
                self.workload is not None,
                "a [faults] table needs a [workload] (faults are injected "
                "into the service phase)",
            )
        if self.observability is not None:
            _require(
                self.workload is not None,
                "an [observability] table needs a [workload] (tracing and "
                "attribution cover the service phase)",
            )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """The spec as plain data (stored verbatim next to its results)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "graph": self.graph.as_dict(),
            "materialize": self.materialize.as_dict(),
        }
        if self.description:
            payload["description"] = self.description
        if self.algorithm_options:
            payload["algorithm_options"] = dict(self.algorithm_options)
        if self.mutations.ops:
            payload["mutations"] = self.mutations.as_dict()
        if self.workload is not None:
            payload["workload"] = self.workload.as_dict()
            payload["service"] = self.service.as_dict()
        if self.faults is not None:
            payload["faults"] = self.faults.as_dict()
        if self.observability is not None:
            payload["observability"] = self.observability.as_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object], source: str = "<dict>") -> "ScenarioSpec":
        """Build and validate a spec from parsed TOML/JSON data."""
        if not isinstance(data, dict):
            raise SpecError(f"{source}: scenario must be a table, got {type(data).__name__}")
        known = {
            "name",
            "algorithm",
            "seed",
            "description",
            "graph",
            "materialize",
            "mutations",
            "workload",
            "service",
            "faults",
            "observability",
            "algorithm_options",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"{source}: unknown scenario keys {unknown}")
        name = str(data.get("name", ""))
        try:
            workload_data = data.get("workload")
            return cls(
                name=name,
                algorithm=str(data.get("algorithm", "spanner3")),
                seed=int(data.get("seed", 7)),
                description=str(data.get("description", "")),
                graph=_sub(GraphSpec, data.get("graph"), "graph"),
                materialize=_sub(MaterializeSpec, data.get("materialize"), "materialize"),
                mutations=_sub(MutationSpec, data.get("mutations"), "mutations"),
                workload=(
                    _sub(WorkloadSpec, workload_data, "workload")
                    if workload_data is not None
                    else None
                ),
                service=_sub(ServiceSpec, data.get("service"), "service"),
                faults=(
                    _sub(FaultSpec, data.get("faults"), "faults")
                    if data.get("faults") is not None
                    else None
                ),
                observability=(
                    _sub(ObservabilitySpec, data.get("observability"), "observability")
                    if data.get("observability") is not None
                    else None
                ),
                algorithm_options=dict(data.get("algorithm_options", {})),
            )
        except SpecError as exc:
            raise SpecError(f"{source}: scenario {name!r}: {exc}") from None
        except (ValueError, TypeError) as exc:
            # Wrong-typed values (e.g. seed = "fast", a list where a table
            # belongs) must fail the same way typos do: one clean SpecError,
            # before any graph is built.
            raise SpecError(f"{source}: scenario {name!r}: {exc}") from None


def _sub(spec_cls, data: Optional[Dict[str, object]], what: str):
    """Instantiate a sub-spec dataclass from an optional sub-table."""
    if data is None:
        return spec_cls()
    if not isinstance(data, dict):
        raise SpecError(f"{what} must be a table, got {type(data).__name__}")
    fields = {f for f in spec_cls.__dataclass_fields__}
    unknown = sorted(set(data) - fields)
    if unknown:
        raise SpecError(f"unknown {what} keys {unknown}; known: {sorted(fields)}")
    kwargs = dict(data)
    if "sizes" in kwargs:
        sizes = kwargs["sizes"]
        if isinstance(sizes, int):
            sizes = [sizes]
        if not isinstance(sizes, (list, tuple)):
            raise SpecError(f"graph sizes must be a list, got {type(sizes).__name__}")
        kwargs["sizes"] = tuple(int(n) for n in sizes)
    return spec_cls(**kwargs)


# --------------------------------------------------------------------------- #
# File loading
# --------------------------------------------------------------------------- #
def _load_toml(path: Path) -> Dict[str, object]:
    """Parse a TOML spec file: :mod:`tomllib` on 3.11+, a subset parser on 3.10.

    The fallback covers exactly what scenario specs use — ``[table]`` /
    ``[[array-of-tables]]`` headers, ``key = value`` with strings, ints,
    floats, booleans and flat arrays, and ``#`` comments — and produces the
    same structure tomllib would for those files.
    """
    try:
        import tomllib
    except ImportError:  # Python 3.10 (python_requires floor)
        return _parse_toml_subset(path)
    with path.open("rb") as handle:
        return tomllib.load(handle)


def _parse_toml_subset(path: Path) -> Dict[str, object]:
    root: Dict[str, object] = {}
    current = root
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = _strip_toml_comment(raw).strip()
        if not line:
            continue
        where = f"{path}:{lineno}"
        if line.startswith("[[") and line.endswith("]]"):
            parent = _descend(root, line[2:-2].split(".")[:-1], where)
            entry: Dict[str, object] = {}
            existing = parent.setdefault(line[2:-2].split(".")[-1], [])
            if not isinstance(existing, list):
                raise SpecError(f"{where}: {line} clashes with an earlier table/value")
            existing.append(entry)
            current = entry
        elif line.startswith("[") and line.endswith("]"):
            parts = line[1:-1].split(".")
            parent = _descend(root, parts[:-1], where)
            current = parent.setdefault(parts[-1], {})
            if not isinstance(current, dict):
                raise SpecError(f"{where}: table name {line} clashes with a value")
        elif "=" in line:
            key, _, value = line.partition("=")
            current[key.strip()] = _toml_value(value.strip(), where)
        else:
            raise SpecError(f"{where}: cannot parse line {raw!r}")
    return root


def _strip_toml_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _descend(root: Dict[str, object], parts: List[str], where: str) -> Dict[str, object]:
    node: object = root
    for part in parts:
        if isinstance(node, dict):
            node = node.setdefault(part, {})
        if isinstance(node, list):
            if not node:
                raise SpecError(f"{where}: [[{part}]] must precede its sub-tables")
            node = node[-1]
        if not isinstance(node, dict):
            raise SpecError(f"{where}: {part!r} is not a table")
    return node


def _split_toml_array(inner: str) -> List[str]:
    """Split array items on commas outside double quotes."""
    items: List[str] = []
    current: List[str] = []
    in_string = False
    for char in inner:
        if char == '"':
            in_string = not in_string
        if char == "," and not in_string:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    items.append("".join(current))
    return [item.strip() for item in items if item.strip()]


def _toml_value(text: str, where: str) -> object:
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_toml_value(item, where) for item in _split_toml_array(inner)]
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise SpecError(f"{where}: unsupported TOML value {text!r}") from None


def load_scenario_file(path: Union[str, Path]) -> List[ScenarioSpec]:
    """Load every scenario from one TOML or JSON spec file.

    TOML files use either top-level scenario keys or ``[[scenario]]``
    tables; JSON files the analogous object or ``{"scenario": [...]}``.
    """
    path = Path(path)
    if not path.exists():
        raise SpecError(f"spec file {path} does not exist")
    if path.suffix.lower() == ".json":
        data = json.loads(path.read_text(encoding="utf-8"))
    elif path.suffix.lower() == ".toml":
        data = _load_toml(path)
    else:
        raise SpecError(f"spec file {path} must be .toml or .json")
    if not isinstance(data, dict):
        raise SpecError(f"{path}: spec file must hold a table/object at top level")
    if "scenario" in data:
        entries = data["scenario"]
        if not isinstance(entries, list):
            raise SpecError(f"{path}: 'scenario' must be an array of tables")
    else:
        entries = [data]
    specs = [ScenarioSpec.from_dict(entry, source=str(path)) for entry in entries]
    names = [spec.name for spec in specs]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise SpecError(f"{path}: duplicate scenario names {duplicates}")
    return specs


def load_scenarios(paths: Sequence[Union[str, Path]]) -> List[ScenarioSpec]:
    """Load scenarios from files and/or directories (``*.toml`` + ``*.json``).

    Directories are scanned non-recursively in sorted order; duplicate
    scenario names across the whole batch are an error (results files would
    overwrite each other).
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(
                p for p in path.iterdir() if p.suffix.lower() in (".toml", ".json")
            )
            if not found:
                raise SpecError(f"directory {path} holds no .toml/.json spec files")
            files.extend(found)
        else:
            files.append(path)
    specs: List[ScenarioSpec] = []
    seen: Dict[str, Path] = {}
    for file in files:
        for spec in load_scenario_file(file):
            if spec.name in seen:
                raise SpecError(
                    f"scenario {spec.name!r} defined in both {seen[spec.name]} and {file}"
                )
            seen[spec.name] = file
            specs.append(spec)
    return specs
