"""Versioned artifact store for scenario results.

One scenario run becomes one JSON document under the results directory
(default ``results/``), named after the scenario.  Each document separates
two kinds of data:

* ``result`` — the deterministic payload
  (:meth:`~repro.reports.runner.ScenarioResult.as_dict`): everything the
  report generator reads.  Same spec + same seeds ⇒ byte-identical payload.
* ``environment`` / ``wall_seconds`` — provenance that legitimately varies
  between hosts and runs (interpreter, platform, wall-clock duration).  The
  renderer never reads these, which is what makes ``repro report render``
  reproducible.

Documents carry a ``store_schema`` version so future layout changes can
migrate old results instead of silently misreading them.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..core.errors import ReproError
from .runner import ScenarioResult

#: Document layout version written by :meth:`ResultStore.save`.
STORE_SCHEMA = 1

#: Default results directory (relative to the invocation cwd).
DEFAULT_RESULTS_DIR = "results"


class StoreError(ReproError):
    """A results document is missing or malformed."""


def environment_fingerprint() -> Dict[str, str]:
    """Provenance of the host a result was produced on (never rendered)."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


class WallTimer:
    """Elapsed wall-clock seconds of one timed block (see :func:`wall_timer`)."""

    seconds: Optional[float] = None


@contextmanager
def wall_timer() -> Iterator[WallTimer]:
    """Measure a block's wall-clock duration for provenance.

    This module is the one sanctioned wall-clock reader in the report
    pipeline (the DET001 lint contract): callers time a scenario run with
    this helper and hand ``timer.seconds`` to :meth:`ResultStore.save`,
    which files it next to the environment fingerprint — outside the
    deterministic ``result`` payload the renderer reads.
    """
    timer = WallTimer()
    started = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - started


class ResultStore:
    """Save / load scenario-result documents in one results directory."""

    def __init__(self, root: Union[str, Path] = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def save(
        self, result: ScenarioResult, wall_seconds: Optional[float] = None
    ) -> Path:
        """Write one result document; returns the path written."""
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "store_schema": STORE_SCHEMA,
            "environment": environment_fingerprint(),
            "wall_seconds": (
                round(float(wall_seconds), 3) if wall_seconds is not None else None
            ),
            "result": result.as_dict(),
        }
        path = self.path_for(result.name)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    def load(self, name: str) -> Dict[str, object]:
        """The deterministic ``result`` payload of one stored scenario."""
        path = self.path_for(name)
        if not path.exists():
            raise StoreError(f"no stored result {name!r} under {self.root}")
        return self._payload(path)

    def list(self) -> List[str]:
        """Stored scenario names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load_all(self) -> List[Dict[str, object]]:
        """Every stored payload, sorted by scenario name."""
        return [self.load(name) for name in self.list()]

    def _payload(self, path: Path) -> Dict[str, object]:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(document, dict) or "result" not in document:
            raise StoreError(f"{path} is not a scenario-result document")
        schema = document.get("store_schema")
        if schema != STORE_SCHEMA:
            raise StoreError(
                f"{path} has store schema {schema!r}; this build reads {STORE_SCHEMA}"
            )
        return document["result"]
