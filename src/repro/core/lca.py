"""Base classes for local computation algorithms for spanners.

Definition 1.4 of the paper: an LCA ``A`` for graph spanners has access to the
adjacency-list oracle ``O_G``, a tape of random bits and local memory.  Given
a query edge ``(u, v) ∈ E`` it makes probes and returns YES iff ``(u, v)``
belongs to one fixed sparse spanner ``H ⊆ G`` determined by ``G`` and the
random tape alone.

:class:`SpannerLCA` encodes this contract:

* the constructor receives the graph, a :class:`~repro.core.seed.Seed` and
  algorithm parameters — nothing else;
* the only access to the graph during a query is the probe oracle passed to
  :meth:`_decide`, so probe accounting is automatic and complete;
* answers are pure functions of ``(graph, seed, query)``; in particular the
  same query always returns the same answer and querying ``(u, v)`` or
  ``(v, u)`` returns the same answer.

The class also provides :meth:`materialize`, which queries every edge of the
graph and returns the induced global spanner together with per-query probe
statistics — the bridge between the local algorithm and the global
verification used by the tests and benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .errors import NotAnEdgeError
from .ids import canonical_edge
from .cache import BoundedOracleCache
from .oracle import AdjacencyListOracle, CachedOracle
from .probes import ProbeCounter, ProbeSnapshot, ProbeStatistics
from .seed import Seed, SeedLike
from ..graphs.graph import Graph
from ..kernels import check_kernel, resolve_kernel

#: Sentinel marking a kernel selection that has not been resolved yet.
_KERNEL_UNSET = object()

Edge = Tuple[int, int]

#: Query-engine modes.  ``cold`` answers every query from scratch (the
#: reference probe schedule); ``cached`` serves repeated per-vertex state from
#: a cross-query memo while charging the cold schedule; ``batched`` applies
#: only to :meth:`SpannerLCA.materialize` and additionally streams decisions
#: without per-query result objects.  All three produce identical answers and
#: identical per-query probe totals (see :mod:`repro.core.cache`).
QUERY_MODES = ("cold", "cached", "batched")


def _check_mode(mode: str) -> str:
    if mode not in QUERY_MODES:
        raise ValueError(f"unknown query mode {mode!r}; choices: {QUERY_MODES}")
    return mode


@dataclass
class LCASpec:
    """Picklable recipe for rebuilding an LCA in another process.

    An LCA is a pure function of ``(graph, seed, params)``; this spec carries
    the non-graph part — the registry ``algorithm`` name, the integer seed
    value and the keyword arguments (parameter dataclasses are frozen and
    picklable) — so a worker holding a graph handle can reconstruct an
    instance that answers (and charges probes) identically.  Produced by
    :meth:`SpannerLCA.executor_spec`; consumed by :mod:`repro.exec`.
    """

    algorithm: str
    seed: int
    kwargs: Dict[str, object] = field(default_factory=dict)
    #: Kernel selection ("python"/"numpy"/"auto"; ``None`` = auto).  Not a
    #: constructor kwarg — workers apply it via :meth:`SpannerLCA.set_kernel`
    #: so parallel rebuilds run the same engine as the coordinator.
    kernel: Optional[str] = None


@dataclass
class EdgeQueryResult:
    """Outcome of a single LCA query."""

    edge: Edge
    in_spanner: bool
    probes: ProbeSnapshot

    @property
    def probe_total(self) -> int:
        return self.probes.total


@dataclass
class BatchQueryResult:
    """Answers and per-query probe totals for a batch of streamed queries.

    Produced by :meth:`SpannerLCA.query_batch`, the service-layer fast path:
    parallel lists instead of one :class:`EdgeQueryResult` per query, so a
    coalesced batch pays no per-request object or context-manager overhead.
    Entry ``i`` corresponds to the ``i``-th edge of the input batch.
    """

    edges: List[Edge]
    answers: List[bool]
    probe_totals: List[int]

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self):
        return iter(zip(self.edges, self.answers, self.probe_totals))


@dataclass
class MaterializedSpanner:
    """A global spanner obtained by querying an LCA on every edge."""

    algorithm: str
    stretch_bound: Optional[int]
    edges: Set[Edge]
    probe_stats: ProbeStatistics = field(default_factory=ProbeStatistics)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def contains(self, u: int, v: int) -> bool:
        return canonical_edge(u, v) in self.edges

    def as_graph(self, host: Graph) -> Graph:
        """The spanner as a spanning subgraph of its host graph."""
        return host.subgraph_with_edges(self.edges)


class SpannerLCA(abc.ABC):
    """Abstract base class for spanner LCAs.

    Subclasses implement :meth:`_decide`, which may only interact with the
    graph through the supplied oracle.
    """

    #: Human-readable algorithm name (overridden by subclasses).
    name: str = "abstract-spanner-lca"

    def __init__(self, graph: Graph, seed: SeedLike) -> None:
        self._graph = graph
        self._seed = Seed.of(seed)
        self._counter = ProbeCounter()
        self._oracle = AdjacencyListOracle(graph, self._counter)
        self._cached_oracle: Optional[CachedOracle] = None
        self._query_mode = "cold"
        self._memo_cap: Optional[int] = None
        self._profiler = None
        self._kernel_name: Optional[str] = None
        self._kernel = _KERNEL_UNSET
        self.probe_stats = ProbeStatistics()

    # ------------------------------------------------------------------ #
    # Contract
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        """Return whether the queried edge belongs to the spanner."""

    def stretch_bound(self) -> Optional[int]:
        """The stretch guarantee of the construction, or ``None`` if unbounded."""
        return None

    # ------------------------------------------------------------------ #
    # Public query interface
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def seed(self) -> Seed:
        return self._seed

    @property
    def graph_epoch(self) -> int:
        """Mutation epoch of the underlying graph (telemetry)."""
        return self._graph.epoch

    def apply_mutations(self, ops: Iterable) -> int:
        """Apply a sequence of graph mutations; returns the count applied.

        Each item is an ``(op, u, v)`` triple or any object with ``op`` /
        ``u`` / ``v`` attributes (e.g. :class:`repro.service.trace.TraceOp`)
        where ``op`` is ``"add"`` or ``"remove"``.  Mutations go straight to
        the shared graph: no cache is flushed here — memoized state carries
        epoch tags (:mod:`repro.core.cache`) and invalidates itself lazily,
        so after any mutation sequence this LCA answers (and charges probes)
        exactly like a from-scratch rebuild on the post-mutation edge set.
        """
        count = 0
        for item in ops:
            if isinstance(item, tuple):
                op, u, v = item
            else:
                op, u, v = item.op, item.u, item.v
            self._graph.apply_mutation(op, u, v)
            count += 1
        return count

    @property
    def query_mode(self) -> str:
        """The active query-engine mode ("cold", "cached" or "batched")."""
        return self._query_mode

    @property
    def probe_counter(self) -> ProbeCounter:
        """The shared probe counter (telemetry: per-kind totals so far)."""
        return self._counter

    @property
    def oracle_cache(self):
        """The :class:`~repro.core.cache.OracleCache` behind the cached
        engine, or ``None`` while the LCA has only run cold queries.
        Exposed for telemetry (hit rates, memo sizes); answers never depend
        on it."""
        cached = self._cached_oracle
        return cached.cache if cached is not None else None

    def set_query_mode(self, mode: str) -> "SpannerLCA":
        """Select the query engine used by :meth:`query` / :meth:`materialize`.

        Answers and per-query probe accounting are identical in every mode;
        only wall-clock speed changes.  "batched" affects materialization
        only — individual queries then run through the cached engine.
        Returns ``self`` for chaining.
        """
        self._query_mode = _check_mode(mode)
        return self

    def set_kernel(self, kernel: Optional[str]) -> "SpannerLCA":
        """Select the probe-kernel implementation for the cached engines.

        ``"python"`` forces the scalar reference path, ``"numpy"`` the
        vectorized kernels (raising
        :class:`~repro.kernels.KernelUnavailableError` with a one-line
        message when numpy is missing), and ``"auto"``/``None`` picks numpy
        when importable.  Answers, per-query probe totals and per-kind probe
        counts are identical under every kernel (pinned by the
        kernel-equivalence tests); only wall-clock speed changes.  The cold
        query mode always runs the scalar reference path.  Returns ``self``
        for chaining.
        """
        if kernel is not None:
            check_kernel(kernel)
        self._kernel_name = kernel
        self._kernel = _KERNEL_UNSET
        resolved = self._resolve_kernel()
        cached = self._cached_oracle
        if cached is not None:
            cached.kernel = resolved
        for component in getattr(self, "components", ()):
            component.set_kernel(kernel)
        return self

    def set_memo_cap(self, cap: Optional[int]) -> "SpannerLCA":
        """Bound the cached engine's resident memo state (the scale mode).

        With a cap, the cached/batched engines run on a
        :class:`~repro.core.cache.BoundedOracleCache`: at most ``cap``
        dependency-tracked memo entries stay resident (LRU eviction) and
        per-vertex random tapes are recomputed from their k-wise seed
        families instead of being stored.  Answers and per-kind probe
        accounting are bit-identical to the unbounded cache in every mode
        and across mutation epochs (pinned by
        ``tests/test_scale_bounded_cache.py``); evicted state is simply
        recomputed — and re-charged — on the next touch.  ``None`` removes
        the cap.  Existing cached state is dropped either way (the engine
        is rebuilt on next use).  Returns ``self`` for chaining.
        """
        if cap is not None and (
            not isinstance(cap, int) or isinstance(cap, bool) or cap < 1
        ):
            raise ValueError(f"memo cap must be a positive integer or None, got {cap!r}")
        self._memo_cap = cap
        self._cached_oracle = None
        for component in getattr(self, "components", ()):
            component.set_memo_cap(cap)
        return self

    @property
    def memo_cap(self) -> Optional[int]:
        """The active memo-entry cap, or ``None`` when unbounded (telemetry)."""
        return self._memo_cap

    @property
    def kernel_name(self) -> str:
        """The resolved kernel actually in use ("python" or "numpy")."""
        kernel = self._resolve_kernel()
        return "python" if kernel is None else kernel.name

    def _resolve_kernel(self):
        if self._kernel is _KERNEL_UNSET:
            self._kernel = resolve_kernel(self._kernel_name)
        return self._kernel

    def attach_profiler(self, profiler) -> "SpannerLCA":
        """Attach a :class:`repro.obs.profiler.ProbeProfiler` to this LCA.

        Pure observation: the profiler sees kernel phase boundaries and
        memo-cache outcomes but never touches the counter or the cache, so
        answers and probe accounting are unchanged (pinned by the
        observability equivalence tests).  ``None`` detaches.  Returns
        ``self`` for chaining.
        """
        self._profiler = profiler
        self._oracle.profiler = profiler
        cached = self._cached_oracle
        if cached is not None:
            cached.profiler = profiler
            cached.cache.profiler = profiler
        return self

    def _oracle_for(self, mode: str) -> AdjacencyListOracle:
        if mode == "cold":
            return self._oracle
        if self._cached_oracle is None:
            cache = None
            if self._memo_cap is not None:
                cache = BoundedOracleCache(self._graph, self._memo_cap)
            self._cached_oracle = CachedOracle(self._graph, self._counter, cache=cache)
            self._cached_oracle.kernel = self._resolve_kernel()
            if self._profiler is not None:
                self._cached_oracle.profiler = self._profiler
                self._cached_oracle.cache.profiler = self._profiler
        return self._cached_oracle

    def ensure_cached_oracle(self) -> CachedOracle:
        """The LCA's cached oracle, created on first use.

        Public handle for the execution plane: chunk workers snapshot its
        portable state and the coordinator merges those snapshots back.
        """
        return self._oracle_for("cached")  # type: ignore[return-value]

    def query_answer_namespace(self) -> Tuple:
        """The memo namespace of the whole-query-answer cache.

        Built from values only (name, seed, parameters) — never from live
        objects — so it is *portable*: a worker process reconstructing this
        LCA from its :meth:`executor_spec` produces the same namespace, and
        its memoized answers fold back into the coordinator's cache through
        the :meth:`~repro.core.oracle.CachedOracle.merge_state` protocol.
        """
        return (
            "query-answer",
            self.name,
            self._seed.value,
            getattr(self, "params", None),
        )

    def executor_spec(self) -> LCASpec:
        """The picklable rebuild recipe used by the parallel executors.

        The default covers every registered construction whose identity is
        ``(registry name, seed, params)``; subclasses with extra
        answer-or-accounting-relevant state must override and extend
        ``kwargs`` (see ``KSquaredSpannerLCA.executor_spec``).
        """
        kwargs: Dict[str, object] = {}
        params = getattr(self, "params", None)
        if params is not None:
            kwargs["params"] = params
        return LCASpec(
            algorithm=self.name,
            seed=self._seed.value,
            kwargs=kwargs,
            kernel=self._kernel_name,
        )

    def query(self, u: int, v: int) -> bool:
        """Answer "is ``(u, v)`` in the spanner?" for an edge of ``G``."""
        return self.query_with_stats(u, v).in_spanner

    def query_with_stats(self, u: int, v: int) -> EdgeQueryResult:
        """Answer a query and report the probes it used."""
        mode = "cold" if self._query_mode == "cold" else "cached"
        return self._query_once(self._oracle_for(mode), u, v)

    def _query_once(
        self, oracle: AdjacencyListOracle, u: int, v: int
    ) -> EdgeQueryResult:
        if not self._graph.has_edge(u, v):
            raise NotAnEdgeError(u, v)
        with self._counter.measure() as measurement:
            answer = bool(self._decide(oracle, u, v))
        self.probe_stats.add(measurement.total)
        return EdgeQueryResult(
            edge=canonical_edge(u, v), in_spanner=answer, probes=measurement.used
        )

    def query_batch(
        self, edges: Iterable[Edge], validate: bool = True
    ) -> BatchQueryResult:
        """Answer a batch of queries through the streaming cached engine.

        This is the per-request analogue of the "batched" materialization
        mode: every query runs through :meth:`_decide` against the shared
        cached oracle, probe totals are taken as counter deltas, and no
        per-query result objects or measure contexts are built.  On top of
        the per-vertex memo layer, *whole query answers* are memoized per
        exact orientation through :meth:`~repro.core.oracle.CachedOracle.
        memoized` — an answer is a pure function of ``(graph, seed, query)``
        and so is its cold probe schedule, so a repeat request replays the
        stored per-kind probe cost and returns the stored answer without
        re-running :meth:`_decide`.  Answers and per-query probe totals are
        therefore identical to :meth:`query_with_stats` — the cold-cache
        probe schedule is charged for every query (see
        :mod:`repro.core.cache`) — only the wall-clock cost per request
        drops, which is what the service layer's batch coalescing banks on.

        ``validate=False`` skips the per-edge membership check for callers
        (the request scheduler) that have already validated admission.
        """
        oracle = self._oracle_for("cached")
        counter = self._counter
        decide = self._decide
        has_edge = self._graph.has_edge
        batch_edges: List[Edge] = []
        answers: List[bool] = []
        totals: List[int] = []
        own_totals = self.probe_stats.query_totals
        memoized = oracle.memoized
        namespace = self.query_answer_namespace()
        before = counter.total
        for (u, v) in edges:
            if validate and not has_edge(u, v):
                raise NotAnEdgeError(u, v)
            answer = memoized(
                namespace, (u, v), lambda: bool(decide(oracle, u, v))
            )
            after = counter.total
            used = after - before
            before = after
            batch_edges.append((u, v))
            answers.append(answer)
            totals.append(used)
            own_totals.append(used)
        return BatchQueryResult(edges=batch_edges, answers=answers, probe_totals=totals)

    # ------------------------------------------------------------------ #
    # Global materialization (verification bridge)
    # ------------------------------------------------------------------ #
    def materialize(
        self,
        edges: Optional[Iterable[Edge]] = None,
        mode: Optional[str] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        tracer=None,
        kernel: Optional[str] = None,
    ) -> MaterializedSpanner:
        """Query every edge (or the given subset) and collect the spanner.

        The construction algorithms of the paper are "used only to define the
        unique spanner ... we never construct the full, global spanner at any
        point"; this method exists purely so that tests and benchmarks can
        check the global object that the local answers are consistent with.

        ``mode`` overrides the LCA's query mode for this materialization:
        "cold" (per-query, from scratch), "cached" (per-query, cross-query
        memo) or "batched" (the streaming engine of
        :meth:`_materialize_batched`).  Edges, per-query probe totals and
        per-kind probe counts are identical across modes.

        ``executor`` selects a parallel execution backend ("serial",
        "thread" or "process", see :mod:`repro.exec`) running ``workers``
        workers: the edge list is split into contiguous chunks, each chunk is
        executed against a worker-local rebuild of this LCA (process workers
        attach to a shared-memory CSR export of the graph instead of
        unpickling it), and edges, per-query probe totals and per-kind probe
        counts fold back bit-identical to the serial engine — every query
        charges its cold-cache probe schedule no matter which worker ran it.
        ``executor=None`` (default) keeps the in-process engine above.

        ``tracer`` (a :class:`repro.obs.tracer.SpanTracer`, default off)
        wraps the run in a ``materialize`` span — observation only, answers
        and probe accounting are unchanged.

        ``kernel`` selects the probe-kernel implementation for this and all
        later queries (shorthand for :meth:`set_kernel`): "python", "numpy"
        or "auto".  Edges and probe accounting are identical under every
        kernel.
        """
        if kernel is not None:
            self.set_kernel(kernel)
        if executor is not None:
            if mode not in (None, "batched"):
                raise ValueError(
                    "parallel materialization always runs the batched engine; "
                    f"drop mode={mode!r} or drop executor="
                )
            from ..exec import materialize_parallel

            return materialize_parallel(
                self, edges=edges, executor=executor, workers=workers, tracer=tracer
            )
        mode = _check_mode(self._query_mode if mode is None else mode)
        result = MaterializedSpanner(
            algorithm=self.name, stretch_bound=self.stretch_bound(), edges=set()
        )
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "materialize", "exec", algorithm=self.name, mode=mode
            ) as span:
                self._materialize_edges(mode, edges, result)
                span.args["edges"] = result.probe_stats.queries
                span.args["probes"] = result.probe_stats.total
        else:
            self._materialize_edges(mode, edges, result)
        return result

    def _materialize_edges(
        self,
        mode: str,
        edges: Optional[Iterable[Edge]],
        result: MaterializedSpanner,
    ) -> None:
        """Run the in-process materialization engine for :meth:`materialize`."""
        if mode == "batched":
            if edges is None and self._kernel_materialize(result):
                return
            edge_iter = self._graph.edges() if edges is None else edges
            self._materialize_batched(edge_iter, result, validate=edges is not None)
            return
        edge_iter = self._graph.edges() if edges is None else edges
        oracle = self._oracle_for(mode)
        for (u, v) in edge_iter:
            outcome = self._query_once(oracle, u, v)
            result.probe_stats.add(outcome.probe_total)
            if outcome.in_spanner:
                result.edges.add(outcome.edge)

    def _kernel_materialize(self, result: MaterializedSpanner) -> bool:
        """Hook for algorithm-specific array-at-once batched materializers.

        Called by :meth:`_materialize_edges` before the scalar batched loop
        when materializing the *full* edge set.  Subclasses with a vectorized
        whole-graph kernel (see ``ThreeSpannerLCA``) override this to fill
        ``result`` with bit-identical edges and per-query probe totals and
        return ``True``; the default ``False`` keeps the scalar engine.
        """
        return False

    def _materialize_batched(
        self, edge_iter: Iterable[Edge], result: MaterializedSpanner, validate: bool
    ) -> None:
        """The batched materialization engine.

        Streams every query through :meth:`_decide` against the shared cached
        oracle without building per-query :class:`EdgeQueryResult` objects.
        Queries arrive grouped by their first endpoint (``Graph.edges`` walks
        the adjacency structure), so consecutive queries share scanner-side
        per-vertex state and the memo layer turns the quadratic re-derivation
        of center sets into one computation per vertex.  Per-query probe
        totals still follow the cold-cache schedule (see
        :mod:`repro.core.cache`) and are collected in ``result.probe_stats``.
        """
        oracle = self._oracle_for("cached")
        counter = self._counter
        decide = self._decide
        has_edge = self._graph.has_edge
        keep = result.edges
        totals = result.probe_stats.query_totals
        own_totals = self.probe_stats.query_totals
        before = counter.total
        for (u, v) in edge_iter:
            if validate and not has_edge(u, v):
                raise NotAnEdgeError(u, v)
            answer = decide(oracle, u, v)
            after = counter.total
            used = after - before
            before = after
            totals.append(used)
            own_totals.append(used)
            if answer:
                keep.add(canonical_edge(u, v))

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def _derive_seed(self, label: str) -> Seed:
        """Derive a role-specific child seed."""
        return self._seed.derive(label)


class CombinedLCA(SpannerLCA):
    """Union of several LCAs (Observation 2.2).

    If subgraphs ``H_1, ..., H_ℓ`` together take care of all edges, their
    union is a spanner; the combined LCA answers YES when *any* component
    answers YES.  Probe complexity, size and random bits add up.
    """

    name = "combined-lca"

    def __init__(
        self, graph: Graph, seed: SeedLike, components: Sequence[SpannerLCA]
    ) -> None:
        super().__init__(graph, seed)
        if not components:
            raise ValueError("CombinedLCA needs at least one component")
        self.components = list(components)

    def stretch_bound(self) -> Optional[int]:
        bounds = [c.stretch_bound() for c in self.components]
        if any(b is None for b in bounds):
            return None
        return max(bounds)

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        # Every component is always invoked; components may contribute edges
        # outside "their" class, so short-circuiting on the first YES is an
        # optimization that does not change the union.
        for component in self.components:
            if component._decide(oracle, u, v):
                return True
        return False


class KeepAllLCA(SpannerLCA):
    """The trivial LCA that keeps every edge (stretch 1, no sparsification).

    Used as a sanity baseline and in degenerate parameter regimes (e.g. when
    every vertex counts as "low degree").
    """

    name = "keep-all"

    def stretch_bound(self) -> Optional[int]:
        return 1

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return True


@dataclass
class LCADescription:
    """Static description of an LCA construction (for tables and docs)."""

    name: str
    stretch: str
    edge_bound: str
    probe_bound: str
    graph_family: str
    reference: str

    def as_row(self) -> Dict[str, str]:
        return {
            "algorithm": self.name,
            "graph family": self.graph_family,
            "# edges": self.edge_bound,
            "stretch": self.stretch,
            "probe complexity": self.probe_bound,
            "reference": self.reference,
        }


PAPER_RESULTS: List[LCADescription] = [
    LCADescription(
        name="3-spanner LCA",
        stretch="3",
        edge_bound="~O(n^{3/2})",
        probe_bound="~O(n^{3/4})",
        graph_family="general",
        reference="Theorem 1.1 (r=2)",
    ),
    LCADescription(
        name="5-spanner LCA",
        stretch="5",
        edge_bound="~O(n^{4/3})",
        probe_bound="~O(n^{5/6})",
        graph_family="general",
        reference="Theorem 1.1 (r=3)",
    ),
    LCADescription(
        name="5-spanner LCA (min degree)",
        stretch="5",
        edge_bound="~O(n^{1+1/r})",
        probe_bound="~O(n^{1-1/(2r)})",
        graph_family="min degree n^{1/2-1/(2r)}",
        reference="Theorem 3.5",
    ),
    LCADescription(
        name="O(k^2)-spanner LCA",
        stretch="O(k^2)",
        edge_bound="~O(n^{1+1/k})",
        probe_bound="~O(Δ^4 n^{2/3})",
        graph_family="general (max degree n^{1/12-ε} for sublinearity)",
        reference="Theorem 1.2",
    ),
]
