"""Vertex and edge identifier utilities.

The paper labels each vertex with a unique O(log n)-bit identifier and never
assumes the identifiers form the range ``0..n-1``.  Throughout this library a
*vertex* is any Python integer (its ``ID`` is the integer itself) and an
*edge identifier* is the pair of endpoint identifiers, compared
lexicographically exactly as in Section 3 ("define the ID of an edge (u, v) as
(ID(u), ID(v)), where the comparison between edge IDs is lexicographic").

Two flavours of edge identifier are used:

* :func:`ordered_edge_id` — the identifier of a *directed* occurrence of an
  edge, used when the construction distinguishes the two sides (e.g. "the edge
  of minimum ID in ``E(A, B)``" where ``A`` and ``B`` play different roles).
* :func:`canonical_edge_id` — the identifier of an *undirected* edge, with the
  smaller endpoint first; used whenever a rule must not depend on which
  endpoint the query presented first.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

Vertex = int
Edge = Tuple[int, int]


def vertex_id(v: Vertex) -> int:
    """Return the numeric identifier of a vertex.

    Vertices *are* their identifiers in this library; the function exists so
    call sites read like the paper ("ID(v)") and so an alternative labelling
    scheme could be swapped in at a single point.
    """
    return int(v)


def ordered_edge_id(u: Vertex, v: Vertex) -> Tuple[int, int]:
    """Identifier of the ordered pair ``(u, v)``: ``(ID(u), ID(v))``."""
    return (vertex_id(u), vertex_id(v))


def canonical_edge_id(u: Vertex, v: Vertex) -> Tuple[int, int]:
    """Identifier of the undirected edge ``{u, v}`` (smaller ID first)."""
    a, b = vertex_id(u), vertex_id(v)
    return (a, b) if a <= b else (b, a)


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the undirected edge ``{u, v}`` as a canonically ordered tuple."""
    return canonical_edge_id(u, v)


def canonicalize_edges(edges: Iterable[Tuple[Vertex, Vertex]]) -> set:
    """Return the set of canonical edge tuples for an iterable of pairs."""
    return {canonical_edge(u, v) for (u, v) in edges}


def is_self_loop(u: Vertex, v: Vertex) -> bool:
    """Return ``True`` when the pair describes a self loop."""
    return vertex_id(u) == vertex_id(v)


def min_edge_by_ordered_id(edges: Iterable[Tuple[Vertex, Vertex]]):
    """Return the edge with lexicographically smallest ordered ID, or ``None``.

    Ties cannot occur for simple graphs because ordered IDs are unique per
    ordered pair.
    """
    best = None
    best_key = None
    for (u, v) in edges:
        key = ordered_edge_id(u, v)
        if best_key is None or key < best_key:
            best_key = key
            best = (u, v)
    return best


def min_edge_by_canonical_id(edges: Iterable[Tuple[Vertex, Vertex]]):
    """Return the edge with smallest canonical (unordered) ID, or ``None``."""
    best = None
    best_key = None
    for (u, v) in edges:
        key = canonical_edge_id(u, v)
        if best_key is None or key < best_key:
            best_key = key
            best = (u, v)
    return best


def require_hashable(obj: Hashable) -> Hashable:
    """Validate that an object is hashable (useful for defensive checks)."""
    hash(obj)
    return obj
