"""Registry of LCA constructions.

Benchmarks, examples and the command-line harness look up constructions by
name instead of importing concrete classes, so new constructions (or ablated
variants) can be added without touching the harness code.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from .errors import ParameterError
from .lca import SpannerLCA
from .seed import SeedLike
from ..graphs.graph import Graph

LCAFactory = Callable[..., SpannerLCA]

_REGISTRY: Dict[str, LCAFactory] = {}


def register(name: str) -> Callable[[LCAFactory], LCAFactory]:
    """Class/function decorator registering an LCA factory under ``name``."""

    def decorator(factory: LCAFactory) -> LCAFactory:
        key = name.strip().lower()
        if key in _REGISTRY:
            raise ParameterError(f"LCA {name!r} is already registered")
        _REGISTRY[key] = factory
        return factory

    return decorator


def available() -> List[str]:
    """Names of all registered constructions (sorted)."""
    _ensure_builtin_registrations()
    return sorted(_REGISTRY)


def create(name: str, graph: Graph, seed: SeedLike, **kwargs) -> SpannerLCA:
    """Instantiate a registered construction by name."""
    _ensure_builtin_registrations()
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ParameterError(
            f"unknown LCA {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key](graph, seed, **kwargs)


def create_many(
    names: Iterable[str], graph: Graph, seed: SeedLike, **kwargs
) -> List[SpannerLCA]:
    """Instantiate several registered constructions with shared arguments."""
    return [create(name, graph, seed, **kwargs) for name in names]


def _ensure_builtin_registrations() -> None:
    """Import the construction packages so their registrations run."""
    # Imported lazily to avoid circular imports at package-import time.
    from .. import spanner3, spanner5, spannerk, baselines  # noqa: F401
