"""Random-seed handling.

Every LCA in this library is a deterministic function of the triple
``(graph, seed, query)``.  The seed plays the role of the paper's shared
random tape: all instances of the LCA (one per edge query, conceptually) read
the same tape and therefore answer consistently with a single spanner.

:class:`Seed` wraps an integer master seed and can deterministically *derive*
independent child seeds for the different roles a construction needs (center
sampling, ranks, marking, per-level cluster sampling, ...).  Derivation uses
SHA-256 so children are statistically unrelated and reproducible across runs
and platforms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Union

from .errors import SeedError

SeedLike = Union[int, str, "Seed"]


def _to_int(material: SeedLike) -> int:
    if isinstance(material, Seed):
        return material.value
    if isinstance(material, bool):
        raise SeedError("booleans are not valid seed material")
    if isinstance(material, int):
        return material
    if isinstance(material, str):
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:16], "big")
    raise SeedError(f"cannot build a seed from {material!r}")


@dataclass(frozen=True)
class Seed:
    """An immutable random seed with deterministic derivation.

    Parameters
    ----------
    value:
        The master seed value (any non-negative integer; negative values are
        mapped to their absolute value for convenience).
    """

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", abs(int(self.value)))

    @classmethod
    def of(cls, material: SeedLike) -> "Seed":
        """Coerce an int, string or :class:`Seed` into a :class:`Seed`."""
        if isinstance(material, Seed):
            return material
        return cls(_to_int(material))

    def derive(self, label: str) -> "Seed":
        """Derive a child seed for the given role label.

        The same ``(parent, label)`` pair always yields the same child, and
        distinct labels yield (cryptographically) unrelated children.
        """
        payload = f"{self.value}:{label}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return Seed(int.from_bytes(digest[:16], "big"))

    def derive_indexed(self, label: str, index: int) -> "Seed":
        """Derive a child seed for an indexed role (e.g. per-level hashing)."""
        return self.derive(f"{label}#{int(index)}")

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Seed({self.value})"
