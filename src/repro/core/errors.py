"""Exception types used throughout the library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for malformed or inconsistent graph inputs."""


class UnknownVertexError(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class NotAnEdgeError(GraphError):
    """Raised when an LCA is queried on a pair that is not an edge of ``G``.

    Definition 1.4 only defines LCA answers for query pairs ``(u, v)`` that
    are edges of the input graph, so querying a non-edge is a caller bug.
    """

    def __init__(self, u, v) -> None:
        super().__init__(f"({u!r}, {v!r}) is not an edge of the input graph")
        self.u = u
        self.v = v


class ProbeBudgetExceededError(ReproError):
    """Raised when a query exceeds its configured probe budget."""

    def __init__(self, budget: int, used: int) -> None:
        super().__init__(
            f"probe budget exceeded: budget={budget}, probes used={used}"
        )
        self.budget = budget
        self.used = used


class ParameterError(ReproError):
    """Raised for invalid algorithm parameters (stretch, thresholds, ...)."""


class SeedError(ReproError):
    """Raised for invalid random-seed material."""


class ConsistencyError(ReproError):
    """Raised when an LCA produces answers inconsistent with a single spanner.

    This should never happen for the algorithms in this library; the error
    exists so the verification harness can report a violated contract loudly
    instead of silently producing a wrong experimental result.
    """
