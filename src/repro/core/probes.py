"""Probe accounting.

The central complexity measure of an LCA is its *probe complexity*: the
maximum number of oracle probes used to answer a single query
(Definition 1.4).  :class:`ProbeCounter` tracks the three probe types of the
paper (``Neighbor``, ``Degree``, ``Adjacency``) and supports nested
"checkpoints" so a harness can attribute probes to individual queries or to
individual sub-routines (used to reproduce Tables 4 and 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager

from .errors import ProbeBudgetExceededError

NEIGHBOR = "neighbor"
DEGREE = "degree"
ADJACENCY = "adjacency"

PROBE_KINDS = (NEIGHBOR, DEGREE, ADJACENCY)


def nearest_rank_percentile(ordered, q: float):
    """The ``q``-th percentile (0 <= q <= 100) of an already *sorted* sequence.

    Uses explicit floor-based nearest-rank selection
    (``⌊q/100 · (N-1) + 1/2⌋``): half-way ranks always round up, unlike
    ``round()`` whose banker's rounding rounds ties to the nearest even rank
    and can pick the rank *below* the midpoint.  Works for any ordered values
    (probe counts, latencies, ...); returns an element of the sequence, or 0
    when it is empty.
    """
    if not ordered:
        return 0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be between 0 and 100")
    # Multiply before dividing — (q/100) * (N-1) loses the tie rank to
    # representation error (e.g. (58/100)*25 = 14.499999999999998 would
    # floor to 14, not 15) — then quantize away the remaining sub-1e-9
    # float noise so decimal q values (64.6, ...) hit their exact rank.
    rank = round(q * (len(ordered) - 1) / 100.0, 9)
    return ordered[int(math.floor(rank + 0.5))]


@dataclass
class ProbeSnapshot:
    """Immutable view of probe counts at a moment in time."""

    neighbor: int = 0
    degree: int = 0
    adjacency: int = 0

    @property
    def total(self) -> int:
        return self.neighbor + self.degree + self.adjacency

    def __sub__(self, other: "ProbeSnapshot") -> "ProbeSnapshot":
        return ProbeSnapshot(
            neighbor=self.neighbor - other.neighbor,
            degree=self.degree - other.degree,
            adjacency=self.adjacency - other.adjacency,
        )

    def __add__(self, other: "ProbeSnapshot") -> "ProbeSnapshot":
        # Replica-set telemetry sums per-replica snapshots into one
        # per-shard view (see repro.service.shards.ReplicaSet).
        return ProbeSnapshot(
            neighbor=self.neighbor + other.neighbor,
            degree=self.degree + other.degree,
            adjacency=self.adjacency + other.adjacency,
        )

    def __reduce__(self):
        # Compact pickling: snapshots travel by the tens of thousands in
        # parallel-execution chunk results (one per memoized query answer).
        return (ProbeSnapshot, (self.neighbor, self.degree, self.adjacency))

    def as_dict(self) -> Dict[str, int]:
        return {
            NEIGHBOR: self.neighbor,
            DEGREE: self.degree,
            ADJACENCY: self.adjacency,
            "total": self.total,
        }


@dataclass
class ProbeCounter:
    """Mutable probe counter with optional budget enforcement.

    Parameters
    ----------
    budget:
        Optional cap on the *total* number of probes.  When exceeded a
        :class:`ProbeBudgetExceededError` is raised; useful for enforcing the
        sub-linear probe guarantees in tests and for the lower-bound
        experiments where the adversary limits the number of probes.
    """

    budget: Optional[int] = None
    counts: Dict[str, int] = field(
        default_factory=lambda: {NEIGHBOR: 0, DEGREE: 0, ADJACENCY: 0}
    )

    def record(self, kind: str, amount: int = 1) -> None:
        """Record ``amount`` probes of the given kind."""
        if kind not in self.counts:
            raise ValueError(f"unknown probe kind {kind!r}")
        self.counts[kind] += amount
        if self.budget is not None and self.total > self.budget:
            raise ProbeBudgetExceededError(self.budget, self.total)

    @property
    def neighbor(self) -> int:
        return self.counts[NEIGHBOR]

    @property
    def degree(self) -> int:
        return self.counts[DEGREE]

    @property
    def adjacency(self) -> int:
        return self.counts[ADJACENCY]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def snapshot(self) -> ProbeSnapshot:
        """Return an immutable snapshot of the current counts."""
        return ProbeSnapshot(
            neighbor=self.counts[NEIGHBOR],
            degree=self.counts[DEGREE],
            adjacency=self.counts[ADJACENCY],
        )

    def reset(self) -> None:
        """Zero all counters (budget is kept)."""
        for kind in self.counts:
            self.counts[kind] = 0

    @contextmanager
    def measure(self) -> Iterator["ProbeMeasurement"]:
        """Context manager measuring probes used inside the ``with`` block."""
        measurement = ProbeMeasurement(start=self.snapshot())
        try:
            yield measurement
        finally:
            measurement.finish(self.snapshot())


@dataclass
class ProbeMeasurement:
    """Result of a :meth:`ProbeCounter.measure` block."""

    start: ProbeSnapshot
    end: Optional[ProbeSnapshot] = None

    def finish(self, end: ProbeSnapshot) -> None:
        self.end = end

    @property
    def used(self) -> ProbeSnapshot:
        if self.end is None:
            raise RuntimeError("measurement has not finished yet")
        return self.end - self.start

    @property
    def total(self) -> int:
        return self.used.total


@dataclass
class ProbeStatistics:
    """Aggregate probe statistics over many queries (max / mean / count)."""

    query_totals: list = field(default_factory=list)

    def add(self, total: int) -> None:
        self.query_totals.append(int(total))

    @property
    def queries(self) -> int:
        return len(self.query_totals)

    @property
    def max(self) -> int:
        return max(self.query_totals) if self.query_totals else 0

    @property
    def mean(self) -> float:
        if not self.query_totals:
            return 0.0
        return sum(self.query_totals) / len(self.query_totals)

    @property
    def total(self) -> int:
        return sum(self.query_totals)

    def percentile(self, q: float) -> int:
        """Return the ``q``-th percentile (0 <= q <= 100) of per-query probes.

        Delegates to :func:`nearest_rank_percentile` (floor-based nearest
        rank), shared with the service-layer latency statistics.
        """
        return nearest_rank_percentile(sorted(self.query_totals), q)

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "total": self.total,
        }
