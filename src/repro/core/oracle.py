"""The adjacency-list probe oracle ``O_G``.

Section 1.4 of the paper defines three probe types, all answered in a single
step by the oracle:

* ``Neighbor(v, i)`` — the ``i``-th neighbor of ``v`` (or ``⊥``),
* ``Degree(v)`` — ``deg(v)``,
* ``Adjacency(u, v)`` — the index of ``v`` inside ``Γ(u)`` (or ``⊥``).

:class:`AdjacencyListOracle` exposes exactly these three operations, counts
every call through a :class:`~repro.core.probes.ProbeCounter`, and is the
*only* handle the LCAs in this library receive to the input graph, so probe
accounting cannot be bypassed accidentally.

Indices are 0-based; the paper's "first t neighbors of v" corresponds to
indices ``0 .. t-1`` here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .probes import ADJACENCY, DEGREE, NEIGHBOR, ProbeCounter
from ..graphs.graph import Graph, Vertex


class AdjacencyListOracle:
    """Probe oracle over a static :class:`~repro.graphs.graph.Graph`.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    counter:
        Probe counter; a fresh one is created when omitted.
    """

    def __init__(self, graph: Graph, counter: Optional[ProbeCounter] = None) -> None:
        self._graph = graph
        self.counter = counter if counter is not None else ProbeCounter()

    # ------------------------------------------------------------------ #
    # The three probe primitives
    # ------------------------------------------------------------------ #
    def degree(self, v: Vertex) -> int:
        """``Degree`` probe: return ``deg(v)``."""
        self.counter.record(DEGREE)
        return self._graph.degree(v)

    def neighbor(self, v: Vertex, index: int) -> Optional[Vertex]:
        """``Neighbor`` probe: the ``index``-th (0-based) neighbor of ``v``.

        Returns ``None`` (the paper's ``⊥``) when ``index`` is out of range.
        """
        self.counter.record(NEIGHBOR)
        return self._graph.neighbor_at(v, index)

    def adjacency(self, u: Vertex, v: Vertex) -> Optional[int]:
        """``Adjacency`` probe on the *ordered* pair ``⟨u, v⟩``.

        Returns the 0-based index of ``v`` inside ``Γ(u)`` when the edge
        exists and ``None`` otherwise.
        """
        self.counter.record(ADJACENCY)
        return self._graph.adjacency_index(u, v)

    # ------------------------------------------------------------------ #
    # Convenience helpers built on the primitives (each probe is counted)
    # ------------------------------------------------------------------ #
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether ``(u, v)`` is an edge, via a single ``Adjacency`` probe."""
        return self.adjacency(u, v) is not None

    def neighbors_prefix(self, v: Vertex, count: int) -> List[Vertex]:
        """The first ``count`` neighbors of ``v`` (fewer if deg(v) < count).

        Uses one ``Degree`` probe plus ``min(count, deg(v))`` ``Neighbor``
        probes — this is the "Γ_{Δ,1}(v)" block-prefix primitive used all over
        the 3- and 5-spanner constructions.
        """
        deg = self.degree(v)
        limit = min(int(count), deg)
        return [self.neighbor(v, i) for i in range(limit)]

    def neighbors_block(self, v: Vertex, block_size: int, block_index: int) -> List[Vertex]:
        """The ``block_index``-th block of size ``block_size`` of ``Γ(v)``.

        Blocks partition the neighbor list into consecutive parts
        ``Γ_{Δ,1}(v), Γ_{Δ,2}(v), ...`` as in Section 1.4.  The last block of
        the paper may have up to ``2Δ`` vertices; here, for simplicity and
        consistency, blocks are exactly ``block_size`` long except the final
        one which contains the remainder (possibly shorter).  All algorithms
        only rely on blocks being a consistent partition of the neighbor list.
        """
        deg = self.degree(v)
        start = block_index * block_size
        stop = min(start + block_size, deg)
        if start >= deg:
            return []
        return [self.neighbor(v, i) for i in range(start, stop)]

    def all_neighbors(self, v: Vertex) -> List[Vertex]:
        """The entire neighbor list Γ(v) (deg(v) ``Neighbor`` probes + 1 degree)."""
        deg = self.degree(v)
        return [self.neighbor(v, i) for i in range(deg)]

    def neighbor_index(self, u: Vertex, v: Vertex) -> Optional[int]:
        """Alias of :meth:`adjacency` matching the paper's phrasing."""
        return self.adjacency(u, v)

    # ------------------------------------------------------------------ #
    # Metadata that the LCA model allows the algorithm to know for free
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """``n`` — known to the algorithm (standard LCA assumption)."""
        return self._graph.num_vertices

    @property
    def graph(self) -> Graph:
        """The underlying graph.

        Exposed for harness / verification code only; LCA implementations
        must not touch it (doing so would bypass probe accounting).
        """
        return self._graph


class SubgraphOracle(AdjacencyListOracle):
    """Oracle restricted to a vertex subset, sharing the parent's counter.

    Used by the local simulation of distributed algorithms, where the LCA has
    already gathered a ball around the query edge and keeps simulating on the
    gathered subgraph without additional probes.  Construction of the ball
    itself must go through the parent oracle so its probes are counted.
    """

    def __init__(self, parent: AdjacencyListOracle, vertices: Sequence[Vertex]) -> None:
        subgraph = parent.graph.induced_subgraph(vertices)
        super().__init__(subgraph, counter=parent.counter)
