"""The adjacency-list probe oracle ``O_G``.

Section 1.4 of the paper defines three probe types, all answered in a single
step by the oracle:

* ``Neighbor(v, i)`` — the ``i``-th neighbor of ``v`` (or ``⊥``),
* ``Degree(v)`` — ``deg(v)``,
* ``Adjacency(u, v)`` — the index of ``v`` inside ``Γ(u)`` (or ``⊥``).

:class:`AdjacencyListOracle` exposes exactly these three operations, counts
every call through a :class:`~repro.core.probes.ProbeCounter`, and is the
*only* handle the LCAs in this library receive to the input graph, so probe
accounting cannot be bypassed accidentally.

Indices are 0-based; the paper's "first t neighbors of v" corresponds to
indices ``0 .. t-1`` here.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from .cache import CacheSnapshot, OracleCache, SnapshotCursor
from .probes import ADJACENCY, DEGREE, NEIGHBOR, ProbeCounter, ProbeSnapshot
from ..graphs.graph import Graph, Vertex


class AdjacencyListOracle:
    """Probe oracle over a static :class:`~repro.graphs.graph.Graph`.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    counter:
        Probe counter; a fresh one is created when omitted.
    """

    #: Whether this oracle supports cross-query memoization (``CachedOracle``
    #: sets this to ``True``; algorithm code may branch on it to pick a
    #: memoized fast path with identical probe accounting).
    supports_memo = False

    def __init__(self, graph: Graph, counter: Optional[ProbeCounter] = None) -> None:
        self._graph = graph
        self.counter = counter if counter is not None else ProbeCounter()
        #: Optional :class:`repro.obs.profiler.ProbeProfiler`.  Kernels reach
        #: it with ``getattr(oracle, "profiler", None)``; ``None`` (the
        #: default) keeps every hot path at one attribute check.
        self.profiler = None
        #: Optional :class:`repro.kernels.engine.NumpyKernel`.  Call sites
        #: branch with ``getattr(oracle, "kernel", None)``; the cold oracle
        #: keeps ``None`` so the reference per-query path stays scalar.
        self.kernel = None

    # ------------------------------------------------------------------ #
    # The three probe primitives
    # ------------------------------------------------------------------ #
    def degree(self, v: Vertex) -> int:
        """``Degree`` probe: return ``deg(v)``."""
        self.counter.record(DEGREE)
        return self._graph.degree(v)

    def neighbor(self, v: Vertex, index: int) -> Optional[Vertex]:
        """``Neighbor`` probe: the ``index``-th (0-based) neighbor of ``v``.

        Returns ``None`` (the paper's ``⊥``) when ``index`` is out of range.
        """
        self.counter.record(NEIGHBOR)
        return self._graph.neighbor_at(v, index)

    def adjacency(self, u: Vertex, v: Vertex) -> Optional[int]:
        """``Adjacency`` probe on the *ordered* pair ``⟨u, v⟩``.

        Returns the 0-based index of ``v`` inside ``Γ(u)`` when the edge
        exists and ``None`` otherwise.
        """
        self.counter.record(ADJACENCY)
        return self._graph.adjacency_index(u, v)

    # ------------------------------------------------------------------ #
    # Convenience helpers built on the primitives (each probe is counted)
    # ------------------------------------------------------------------ #
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether ``(u, v)`` is an edge, via a single ``Adjacency`` probe."""
        return self.adjacency(u, v) is not None

    def neighbors_prefix(self, v: Vertex, count: int) -> List[Vertex]:
        """The first ``count`` neighbors of ``v`` (fewer if deg(v) < count).

        Uses one ``Degree`` probe plus ``min(count, deg(v))`` ``Neighbor``
        probes — this is the "Γ_{Δ,1}(v)" block-prefix primitive used all over
        the 3- and 5-spanner constructions.
        """
        deg = self.degree(v)
        limit = min(int(count), deg)
        return [self.neighbor(v, i) for i in range(limit)]

    def neighbors_block(self, v: Vertex, block_size: int, block_index: int) -> List[Vertex]:
        """The ``block_index``-th block of size ``block_size`` of ``Γ(v)``.

        Blocks partition the neighbor list into consecutive parts
        ``Γ_{Δ,1}(v), Γ_{Δ,2}(v), ...`` as in Section 1.4.  The last block of
        the paper may have up to ``2Δ`` vertices; here, for simplicity and
        consistency, blocks are exactly ``block_size`` long except the final
        one which contains the remainder (possibly shorter).  All algorithms
        only rely on blocks being a consistent partition of the neighbor list.
        """
        deg = self.degree(v)
        start = block_index * block_size
        stop = min(start + block_size, deg)
        if start >= deg:
            return []
        return [self.neighbor(v, i) for i in range(start, stop)]

    def all_neighbors(self, v: Vertex) -> List[Vertex]:
        """The entire neighbor list Γ(v) (deg(v) ``Neighbor`` probes + 1 degree)."""
        deg = self.degree(v)
        return [self.neighbor(v, i) for i in range(deg)]

    def neighbor_index(self, u: Vertex, v: Vertex) -> Optional[int]:
        """Alias of :meth:`adjacency` matching the paper's phrasing."""
        return self.adjacency(u, v)

    # ------------------------------------------------------------------ #
    # Metadata that the LCA model allows the algorithm to know for free
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """``n`` — known to the algorithm (standard LCA assumption)."""
        return self._graph.num_vertices

    @property
    def graph(self) -> Graph:
        """The underlying graph.

        Exposed for harness / verification code only; LCA implementations
        must not touch it (doing so would bypass probe accounting).
        """
        return self._graph


class CachedOracle(AdjacencyListOracle):
    """Probe oracle with cross-query memoization and cold-schedule accounting.

    Drop-in replacement for :class:`AdjacencyListOracle`: every probe (and
    every convenience helper) records **exactly** the probes the cold oracle
    would record — per kind, per query — while the data itself is served from
    an :class:`~repro.core.cache.OracleCache`.  See :mod:`repro.core.cache`
    for the full accounting contract.

    The cache is owned by the oracle (or shared, when passed in) and persists
    across queries, which is what makes repeated materializations and batched
    query engines fast.
    """

    supports_memo = True

    def __init__(
        self,
        graph: Graph,
        counter: Optional[ProbeCounter] = None,
        cache: Optional[OracleCache] = None,
    ) -> None:
        super().__init__(graph, counter)
        if cache is not None and cache.graph is not graph:
            raise ValueError("cache was built for a different graph")
        self.cache = cache if cache is not None else OracleCache(graph)

    # ------------------------------------------------------------------ #
    # Probe primitives (identical charging, cached reads)
    # ------------------------------------------------------------------ #
    def degree(self, v: Vertex) -> int:
        self.counter.record(DEGREE)
        return self.cache.degree(v)

    def neighbor(self, v: Vertex, index: int) -> Optional[Vertex]:
        self.counter.record(NEIGHBOR)
        row = self.cache.neighbors(v)
        if 0 <= index < len(row):
            return row[index]
        return None

    def adjacency(self, u: Vertex, v: Vertex) -> Optional[int]:
        self.counter.record(ADJACENCY)
        return self.cache.index_row(u).get(int(v))

    # ------------------------------------------------------------------ #
    # Bulk-charged helpers (same totals as the cold per-probe loops)
    # ------------------------------------------------------------------ #
    def neighbors_prefix(self, v: Vertex, count: int) -> List[Vertex]:
        row = self.cache.neighbors(v)
        limit = min(int(count), len(row))
        self.counter.record(DEGREE)
        if limit:
            self.counter.record(NEIGHBOR, limit)
        return list(row[:limit])

    def neighbors_block(self, v: Vertex, block_size: int, block_index: int) -> List[Vertex]:
        row = self.cache.neighbors(v)
        deg = len(row)
        self.counter.record(DEGREE)
        start = block_index * block_size
        stop = min(start + block_size, deg)
        if start >= deg:
            return []
        if stop > start:
            self.counter.record(NEIGHBOR, stop - start)
        # Out-of-range (negative) indices answer ⊥ exactly like the cold
        # per-probe loop, probes included.
        return [row[i] if i >= 0 else None for i in range(start, stop)]

    def all_neighbors(self, v: Vertex) -> List[Vertex]:
        row = self.cache.neighbors(v)
        self.counter.record(DEGREE)
        if row:
            self.counter.record(NEIGHBOR, len(row))
        return list(row)

    # ------------------------------------------------------------------ #
    # Memoization of derived pure state
    # ------------------------------------------------------------------ #
    def memo(self, namespace: Hashable) -> dict:
        """A named memo table on the underlying cache."""
        return self.cache.memo(namespace)

    def charge(self, neighbor: int = 0, degree: int = 0, adjacency: int = 0) -> None:
        """Record probes in bulk (the cold schedule of a memoized value)."""
        counter = self.counter
        if degree:
            counter.record(DEGREE, degree)
        if neighbor:
            counter.record(NEIGHBOR, neighbor)
        if adjacency:
            counter.record(ADJACENCY, adjacency)

    def replay(self, cost: ProbeSnapshot) -> None:
        """Re-charge a previously measured per-kind probe cost."""
        self.charge(
            neighbor=cost.neighbor, degree=cost.degree, adjacency=cost.adjacency
        )

    def memoized(self, namespace: Hashable, key: Hashable, compute):
        """Memoize ``compute()`` and replay its probe cost on every hit.

        On a miss, ``compute()`` runs against this oracle (so it charges its
        own cold-schedule probes) and the measured per-kind probe delta is
        stored next to the value; on a hit, exactly that delta is replayed.
        ``compute`` must be a pure function of ``(graph, seed, key)`` whose
        probe cost does not depend on cache state — true for every derived
        quantity in this library, and checked end-to-end by the equivalence
        tests.

        Entries are epoch-invalidated (:mod:`repro.core.cache`): the reads
        ``compute`` makes are dependency-tracked, and a later mutation of
        any vertex it touched turns the entry into a miss, so the value and
        its cold probe schedule are recomputed against the mutated graph.
        """
        cache = self.cache
        profiler = self.profiler
        invalidations_before = profiler.invalidations if profiler is not None else 0
        entry = cache.lookup(namespace, key)
        if entry is not None:
            value, cost = entry.value
            cache.stats.hits += 1
            self.replay(cost)
            if profiler is not None:
                profiler.record_hit(cost.total)
            return value
        cache.stats.misses += 1
        before = self.counter.snapshot()
        with cache.track() as touched:
            value = compute()
        cost = self.counter.snapshot() - before
        cache.store(namespace, key, (value, cost), touched)
        if profiler is not None:
            # The invalidation count moved during *this* lookup exactly when
            # the miss is a stale-entry discard, not a cold first touch.
            profiler.record_miss(
                cost.total, invalidated=profiler.invalidations > invalidations_before
            )
        return value

    # ------------------------------------------------------------------ #
    # Snapshot / merge (parallel-execution fold-back)
    # ------------------------------------------------------------------ #
    def snapshot_state(
        self, since: Optional[SnapshotCursor] = None
    ) -> CacheSnapshot:
        """Export the portable memo state (picklable; see :class:`CacheSnapshot`).

        Every exported entry carries its measured cold-schedule probe cost,
        so a receiver that merges the snapshot keeps charging exactly the
        cold schedule on later hits — per-query probe accounting is
        unchanged by where a value was first computed.  ``since`` (a
        :class:`~repro.core.cache.SnapshotCursor`) makes repeated exports
        incremental.
        """
        return self.cache.snapshot(since)

    def merge_state(self, snapshot: CacheSnapshot) -> None:
        """Fold a worker's portable memo state into this oracle's cache.

        Deterministic regardless of merge order (values are pure functions
        of ``(graph, seed, key)``); never touches the probe counter.
        """
        self.cache.merge(snapshot)


class SubgraphOracle(AdjacencyListOracle):
    """Oracle restricted to a vertex subset, sharing the parent's counter.

    Used by the local simulation of distributed algorithms, where the LCA has
    already gathered a ball around the query edge and keeps simulating on the
    gathered subgraph without additional probes.  Construction of the ball
    itself must go through the parent oracle so its probes are counted.
    """

    def __init__(self, parent: AdjacencyListOracle, vertices: Sequence[Vertex]) -> None:
        subgraph = parent.graph.induced_subgraph(vertices)
        super().__init__(subgraph, counter=parent.counter)
