"""Cross-query memoization for the probe oracle.

The LCAs of the paper are pure functions of ``(graph, seed, query)``
(Definition 1.4), so every intermediate quantity an LCA derives — degrees,
neighbor-list prefixes, center sets ``S(v)``, cluster memberships,
representative sets — is itself a pure function of ``(graph, seed, vertex)``
and can be cached across queries without changing a single answer.  This is
the same observation the space-efficient-LCA line of work exploits to reuse
previously computed per-vertex state.

The probe-accounting contract
-----------------------------

Probe complexity is the paper's *model* cost, not a wall-clock cost.  The
cached fast path therefore preserves accounting exactly:

* every query is charged the probes of the **cold-cache probe schedule** —
  the sequence of ``Degree`` / ``Neighbor`` / ``Adjacency`` probes the
  algorithm would have made with an empty cache — even when the answer is
  served from memoized state;
* charges are recorded per probe kind, so per-kind breakdowns (Tables 4–5)
  match the cold path, not just totals;
* only the wall-clock work is elided: memoized values are returned from
  dictionaries and the corresponding probes are recorded in bulk.

Concretely, :meth:`~repro.core.oracle.CachedOracle.memoized` measures the
probes charged while computing a value on the first (miss) execution and
replays exactly that per-kind probe delta on every later hit.  Because a
memoized computation's probe cost is itself a pure function of
``(graph, seed, key)``, the replayed cost equals the cold cost, and an
equivalence test (``tests/test_backend_equivalence.py``) enforces identical
per-query probe totals between the cold and cached paths.

One observable difference is *budget* enforcement granularity: a
:class:`~repro.core.probes.ProbeCounter` budget still trips on the same
query, but bulk recording may overshoot the budget by the size of the last
bulk charge instead of stopping at exactly ``budget + 1`` probes.  Budgeted
counters (the lower-bound experiments) use the cold path.

:class:`OracleCache` is the storage: per-vertex read caches for the three
probe primitives plus named memo tables for derived per-vertex state.  It is
owned by a :class:`~repro.core.oracle.CachedOracle` and lives as long as its
LCA, so state is reused across queries *and* across materializations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from ..graphs.graph import Graph, Vertex


@dataclass
class CacheStats:
    """Hit/miss counters for memoized derived state (reporting only)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


class OracleCache:
    """Memo tables and raw-read facade backing a ``CachedOracle``.

    All accessors are **probe-free**: they read the graph directly and never
    touch a probe counter.  Charging the model cost is the caller's job (see
    the module docstring for the contract).

    Raw reads (neighbor rows, degrees, adjacency rows) delegate to the lazy
    structures the graph backends already maintain — cached neighbor views
    and per-vertex ``adjacency_row`` dicts — so the adjacency data exists in
    exactly one place per graph; this object only owns the memo tables for
    *derived* per-LCA state.
    """

    __slots__ = ("graph", "stats", "_memos")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.stats = CacheStats()
        self._memos: Dict[Hashable, dict] = {}

    # ------------------------------------------------------------------ #
    # Raw reads (probe-free; served by the graph's own lazy caches)
    # ------------------------------------------------------------------ #
    def degree(self, v: Vertex) -> int:
        # Both backends answer degree in O(1) without materializing the
        # neighbor view (len of the adjacency list / indptr difference).
        return self.graph.degree(v)

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        return self.graph.neighbors(v)

    def index_row(self, v: Vertex) -> Dict[Vertex, int]:
        """The ``{neighbor: position}`` row of ``v`` (read-only)."""
        return self.graph.adjacency_row(v)

    # ------------------------------------------------------------------ #
    # Memo tables for derived per-vertex state
    # ------------------------------------------------------------------ #
    def memo(self, namespace: Hashable) -> dict:
        """A named memo table (created on first use).

        Callers use ``(system_object, role)`` tuples as namespaces so that
        distinct center systems / samplers (distinct seeds) never share
        entries.  Keeping the object itself in the key also pins it alive,
        ruling out ``id()`` reuse bugs.
        """
        table = self._memos.get(namespace)
        if table is None:
            table = {}
            self._memos[namespace] = table
        return table

    def memo_sizes(self) -> Dict[str, int]:
        """Entry counts per memo namespace (debugging / reporting)."""
        return {repr(namespace): len(table) for namespace, table in self._memos.items()}

    def clear(self) -> None:
        """Drop all memoized state (answers are unaffected; only speed is)."""
        self._memos.clear()
