"""Cross-query memoization for the probe oracle.

The LCAs of the paper are pure functions of ``(graph, seed, query)``
(Definition 1.4), so every intermediate quantity an LCA derives — degrees,
neighbor-list prefixes, center sets ``S(v)``, cluster memberships,
representative sets — is itself a pure function of ``(graph, seed, vertex)``
and can be cached across queries without changing a single answer.  This is
the same observation the space-efficient-LCA line of work exploits to reuse
previously computed per-vertex state.

The probe-accounting contract
-----------------------------

Probe complexity is the paper's *model* cost, not a wall-clock cost.  The
cached fast path therefore preserves accounting exactly:

* every query is charged the probes of the **cold-cache probe schedule** —
  the sequence of ``Degree`` / ``Neighbor`` / ``Adjacency`` probes the
  algorithm would have made with an empty cache — even when the answer is
  served from memoized state;
* charges are recorded per probe kind, so per-kind breakdowns (Tables 4–5)
  match the cold path, not just totals;
* only the wall-clock work is elided: memoized values are returned from
  dictionaries and the corresponding probes are recorded in bulk.

Concretely, :meth:`~repro.core.oracle.CachedOracle.memoized` measures the
probes charged while computing a value on the first (miss) execution and
replays exactly that per-kind probe delta on every later hit.  Because a
memoized computation's probe cost is itself a pure function of
``(graph, seed, key)``, the replayed cost equals the cold cost, and an
equivalence test (``tests/test_backend_equivalence.py``) enforces identical
per-query probe totals between the cold and cached paths.

One observable difference is *budget* enforcement granularity: a
:class:`~repro.core.probes.ProbeCounter` budget still trips on the same
query, but bulk recording may overshoot the budget by the size of the last
bulk charge instead of stopping at exactly ``budget + 1`` probes.  Budgeted
counters (the lower-bound experiments) use the cold path.

:class:`OracleCache` is the storage: per-vertex read caches for the three
probe primitives plus named memo tables for derived per-vertex state.  It is
owned by a :class:`~repro.core.oracle.CachedOracle` and lives as long as its
LCA, so state is reused across queries *and* across materializations.

Epoch-based invalidation (dynamic graphs)
-----------------------------------------

Graphs mutate (:meth:`~repro.graphs.graph.Graph.add_edge` /
``remove_edge``), and every memoized value is a pure function of the *rows
it read*.  The cache therefore records, per entry, the set of vertices the
computation touched (:class:`MemoEntry`) along with the graph epoch at
store time; a mutation merely bumps the epochs of its two endpoints.  On
lookup an entry is served only while none of its touched vertices has a
newer epoch — otherwise it is discarded and the miss path recomputes
against the current graph, re-charging the cold probe schedule of the *new*
graph.  Because computations are deterministic and only read through the
tracked accessors, a fresh entry's value and replayed cold cost are
bit-identical to what a from-scratch rebuild on the post-mutation edge set
would produce — the mutation-plane equivalence the tests pin.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Hashable, Iterator, Optional, Set, Tuple

from ..graphs.graph import Graph, Vertex

#: Empty dependency set shared by graph-independent memo entries.
_NO_TOUCHES: frozenset = frozenset()


class MemoEntry:
    """One memoized value plus its epoch-invalidation metadata.

    ``touched`` is the set of vertices whose neighbor rows (or degrees, or
    adjacency rows) the computation read; ``epoch`` is the graph's global
    mutation epoch when the value was stored.  The entry is *fresh* while no
    touched vertex has mutated since — computations are deterministic, so
    re-running one whose reads are all unchanged would retrace the same
    reads and produce the same value (and the same cold probe schedule).
    An entry with an empty ``touched`` set is a pure function of
    ``(seed, key)`` and never goes stale.
    """

    __slots__ = ("value", "epoch", "touched")

    def __init__(self, value, epoch: int = 0, touched: frozenset = _NO_TOUCHES) -> None:
        self.value = value
        self.epoch = epoch
        self.touched = touched

    def __reduce__(self):
        # Compact pickling: entries travel by the tens of thousands inside
        # parallel-execution cache snapshots.
        return (MemoEntry, (self.value, self.epoch, self.touched))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MemoEntry)
            and self.value == other.value
            and self.epoch == other.epoch
            and self.touched == other.touched
        )

    def __hash__(self):  # pragma: no cover - entries are not used as keys
        return hash((self.value, self.epoch, self.touched))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"MemoEntry({self.value!r}, epoch={self.epoch}, touched={len(self.touched)})"

#: Leaf types allowed inside a *portable* memo namespace (see
#: :func:`is_portable_namespace`).
_PORTABLE_LEAVES = (str, int, float, bool, type(None), bytes)


def is_portable_namespace(namespace: Hashable) -> bool:
    """Whether a memo namespace survives a process boundary.

    Portable namespaces are built only from primitives (and tuples thereof,
    plus frozen dataclasses such as :class:`~repro.core.seed.Seed` or the
    parameter objects, which compare by value): equal on both sides of a
    pickle round trip, so per-worker memo tables under them can be folded
    back into the coordinator's cache.  Namespaces keyed by live objects
    (the ``(system_object, role)`` convention for per-vertex derived state)
    are process-local by construction and are excluded from snapshots.
    """
    if isinstance(namespace, bool):  # bool before int for clarity; both fine
        return True
    if isinstance(namespace, _PORTABLE_LEAVES):
        return True
    if isinstance(namespace, tuple):
        return all(is_portable_namespace(item) for item in namespace)
    # Frozen dataclasses (Seed, *Params) hash/compare by value and pickle
    # cleanly; detect them structurally instead of importing every type.
    params = getattr(namespace, "__dataclass_params__", None)
    if params is not None and params.frozen:
        fields = getattr(namespace, "__dataclass_fields__", {})
        return all(
            is_portable_namespace(getattr(namespace, name)) for name in fields
        )
    return False


@dataclass
class CacheSnapshot:
    """Portable slice of an :class:`OracleCache` (picklable, mergeable).

    Contains the hit/miss statistics plus every memo table whose namespace
    is portable (:func:`is_portable_namespace`) — in practice the
    query-answer memo, whose values ``(answer, cold ProbeSnapshot)`` are pure
    functions of ``(graph, seed, query)``.  Because the values are pure,
    merging snapshots from any number of workers in any order produces the
    same cache: a fold is deterministic by construction.
    """

    hits: int = 0
    misses: int = 0
    memos: Dict[Hashable, dict] = field(default_factory=dict)

    @property
    def entries(self) -> int:
        return sum(len(table) for table in self.memos.values())


@dataclass
class SnapshotCursor:
    """Progress marker for incremental snapshots (see :meth:`OracleCache.snapshot`).

    Remembers how much state an earlier snapshot already exported — the
    stats counters and the per-namespace entry counts — so the next
    snapshot through the same cursor carries only the delta.  Cursors rely
    on memo tables being append-only between snapshots, which holds exactly
    where they are used: chunk workers never mutate their graph, so no
    entry of theirs is ever lazily invalidated mid-run.
    """

    hits: int = 0
    misses: int = 0
    counts: Dict[Hashable, int] = field(default_factory=dict)


@dataclass
class CacheStats:
    """Hit/miss counters for memoized derived state (reporting only)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


class OracleCache:
    """Memo tables and raw-read facade backing a ``CachedOracle``.

    All accessors are **probe-free**: they read the graph directly and never
    touch a probe counter.  Charging the model cost is the caller's job (see
    the module docstring for the contract).

    Raw reads (neighbor rows, degrees, adjacency rows) delegate to the lazy
    structures the graph backends already maintain — cached neighbor views
    and per-vertex ``adjacency_row`` dicts — so the adjacency data exists in
    exactly one place per graph; this object only owns the memo tables for
    *derived* per-LCA state.
    """

    __slots__ = ("graph", "stats", "profiler", "_memos", "_trackers")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.stats = CacheStats()
        #: Optional :class:`repro.obs.profiler.ProbeProfiler` observing this
        #: cache (duck-typed; ``None`` keeps the hot path untouched).
        self.profiler = None
        self._memos: Dict[Hashable, dict] = {}
        # Dependency-tracking frames: while a memoized computation runs, the
        # top frame collects the vertices whose rows it reads.
        self._trackers: list = []

    # ------------------------------------------------------------------ #
    # Raw reads (probe-free; served by the graph's own lazy caches)
    # ------------------------------------------------------------------ #
    def degree(self, v: Vertex) -> int:
        # Both backends answer degree in O(1) without materializing the
        # neighbor view (len of the adjacency list / indptr difference).
        if self._trackers:
            self._trackers[-1].add(int(v))
        return self.graph.degree(v)

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        if self._trackers:
            self._trackers[-1].add(int(v))
        return self.graph.neighbors(v)

    def index_row(self, v: Vertex) -> Dict[Vertex, int]:
        """The ``{neighbor: position}`` row of ``v`` (read-only)."""
        if self._trackers:
            self._trackers[-1].add(int(v))
        return self.graph.adjacency_row(v)

    @property
    def tracking(self) -> bool:
        """Whether a :meth:`track` frame is currently open."""
        return bool(self._trackers)

    def note_read(self, vertices) -> None:
        """Register vertices a batched kernel read outside the accessors.

        Vectorized kernels read adjacency from an epoch-stamped array view
        instead of :meth:`degree`/:meth:`neighbors`; this records the same
        dependency set with the innermost tracker so memoized values built
        over kernel reads still invalidate on exactly the scalar schedule.
        """
        if self._trackers:
            tracker = self._trackers[-1]
            for vertex in vertices:
                tracker.add(int(vertex))

    # ------------------------------------------------------------------ #
    # Memo tables for derived per-vertex state
    # ------------------------------------------------------------------ #
    def memo(self, namespace: Hashable) -> dict:
        """A named memo table (created on first use).

        Callers use ``(system_object, role)`` tuples as namespaces so that
        distinct center systems / samplers (distinct seeds) never share
        entries.  Keeping the object itself in the key also pins it alive,
        ruling out ``id()`` reuse bugs.
        """
        table = self._memos.get(namespace)
        if table is None:
            table = {}
            self._memos[namespace] = table
        return table

    def memo_sizes(self) -> Dict[str, int]:
        """Entry counts per memo namespace (debugging / reporting)."""
        return {repr(namespace): len(table) for namespace, table in self._memos.items()}

    # ------------------------------------------------------------------ #
    # Epoch-aware memoization (the mutation-plane invalidation protocol)
    # ------------------------------------------------------------------ #
    def _entry_fresh(self, entry: MemoEntry) -> bool:
        graph = self.graph
        current = graph.epoch
        stored = entry.epoch
        if current == stored:
            # Fast path: nothing mutated since the entry was last validated
            # (every lookup on a never-mutated graph, where both sides are 0).
            return True
        touched = entry.touched
        if touched:
            if current - stored <= len(touched):
                # Few mutations since: scan the mutation-log suffix against
                # the dependency set (O(1) membership per mutation).
                for (u, v) in graph.mutations_since(stored):
                    if u in touched or v in touched:
                        return False
            else:
                # Many mutations since: per-vertex epoch comparison is the
                # cheaper direction.
                vertex_epoch = graph.vertex_epoch
                for v in touched:
                    if vertex_epoch(v) > stored:
                        return False
        # Survived validation: re-stamp so the next lookup takes the fast
        # path until the *next* mutation — validation cost is paid once per
        # (entry, mutation burst), not once per hit.
        entry.epoch = current
        return True

    def lookup(self, namespace: Hashable, key: Hashable) -> Optional[MemoEntry]:
        """The fresh :class:`MemoEntry` under ``(namespace, key)``, or ``None``.

        A stale entry — one whose touched vertices mutated after it was
        stored — is discarded here, so the caller's miss path recomputes it
        against the current graph and re-charges the (new) cold probe
        schedule.  On a hit the entry's dependency set is propagated into
        the enclosing tracking frame, keeping outer memoized computations
        invalidatable through the state they consumed indirectly.
        """
        table = self._memos.get(namespace)
        if table is None:
            return None
        entry = table.get(key)
        if entry is None:
            return None
        if not self._entry_fresh(entry):
            del table[key]
            if self.profiler is not None:
                # Observation only: the discard itself is unchanged, the
                # profiler just learns that the miss about to follow is an
                # epoch invalidation rather than a cold first touch.
                self.profiler.note_invalidation()
            return None
        if self._trackers and entry.touched:
            self._trackers[-1].update(entry.touched)
        return entry

    def store(
        self, namespace: Hashable, key: Hashable, value, touched: Set[Vertex]
    ) -> MemoEntry:
        """Store a value computed under a :meth:`track` frame."""
        touched = frozenset(touched) if touched else _NO_TOUCHES
        entry = MemoEntry(value, self.graph.epoch, touched)
        self.memo(namespace)[key] = entry
        if self._trackers and touched:
            self._trackers[-1].update(touched)
        return entry

    @contextmanager
    def track(self) -> Iterator[Set[Vertex]]:
        """Collect the vertices read by the computation inside the block."""
        tracker: Set[Vertex] = set()
        self._trackers.append(tracker)
        try:
            yield tracker
        finally:
            self._trackers.pop()

    def memoize(self, namespace: Hashable, key: Hashable, compute):
        """Epoch-aware memoization of a probe-free computation.

        The shared helper behind every per-vertex derived-state memo
        (center sets, elections, representatives, ...): serves fresh
        entries, lazily discards stale ones, and records the dependency set
        of ``compute`` so later mutations of any vertex it read invalidate
        the entry.  Callers charge the cold probe schedule themselves —
        this layer never touches a probe counter (or the hit/miss stats,
        which remain the :meth:`~repro.core.oracle.CachedOracle.memoized`
        telemetry).
        """
        entry = self.lookup(namespace, key)
        if entry is not None:
            return entry.value
        with self.track() as touched:
            value = compute()
        self.store(namespace, key, value, touched)
        return value

    # ------------------------------------------------------------------ #
    # Snapshot / merge (the parallel-execution fold-back protocol)
    # ------------------------------------------------------------------ #
    def snapshot(self, since: Optional[SnapshotCursor] = None) -> CacheSnapshot:
        """Export the portable slice of this cache (see :class:`CacheSnapshot`).

        Only memo tables under portable namespaces are included; per-vertex
        derived state keyed by live system objects stays local.  Tables are
        shallow-copied so the snapshot is stable under further queries.

        With ``since`` (a :class:`SnapshotCursor`, updated in place) only
        the state added after the cursor's last use is exported — chunk
        workers use this so repeated snapshots never re-ship or double-count
        already-exported entries and statistics.
        """
        if since is None:
            return CacheSnapshot(
                hits=self.stats.hits,
                misses=self.stats.misses,
                memos={
                    namespace: dict(table)
                    for namespace, table in self._memos.items()
                    if table and is_portable_namespace(namespace)
                },
            )
        memos: Dict[Hashable, dict] = {}
        for namespace, table in self._memos.items():
            if not table or not is_portable_namespace(namespace):
                continue
            exported = since.counts.get(namespace, 0)
            if len(table) > exported:
                # Memo tables are append-only dicts; insertion order makes
                # "everything after the first `exported` items" the delta.
                memos[namespace] = dict(islice(table.items(), exported, None))
            since.counts[namespace] = len(table)
        snapshot = CacheSnapshot(
            hits=self.stats.hits - since.hits,
            misses=self.stats.misses - since.misses,
            memos=memos,
        )
        since.hits = self.stats.hits
        since.misses = self.stats.misses
        return snapshot

    def merge(self, snapshot: CacheSnapshot) -> None:
        """Fold a worker's portable cache slice into this cache.

        Memoized values under a portable namespace are pure functions of
        ``(graph, seed, key)``, so entries present on both sides are equal
        and first-write-wins merging is deterministic regardless of worker
        scheduling.  Hit/miss statistics accumulate (telemetry only —
        answers and probe accounting never depend on them).

        Snapshots must have been computed against the receiver's *current*
        graph state (true for every executor fold-back: workers attach to an
        export of the coordinator's graph).  Incoming entries are therefore
        re-stamped with the receiver's current epoch — a worker's own epoch
        counter starts at 0 regardless of the coordinator's mutation
        history, so the stamp, not the worker counter, is what keeps the
        folded entries comparable with locally computed ones.
        """
        self.stats.hits += snapshot.hits
        self.stats.misses += snapshot.misses
        epoch = self.graph.epoch
        for namespace, table in snapshot.memos.items():
            own = self.memo(namespace)
            for key, entry in table.items():
                if key not in own:
                    if entry.epoch != epoch:
                        entry = MemoEntry(entry.value, epoch, entry.touched)
                    own[key] = entry

    def clear(self) -> None:
        """Drop all memoized state (answers are unaffected; only speed is)."""
        self._memos.clear()


class BoundedOracleCache(OracleCache):
    """An :class:`OracleCache` whose memo footprint is capped (LRU eviction).

    The space-efficient-LCA observation (Alon–Rubinfeld–Vardi–Xie): since
    every memoized value is a pure function of ``(graph, seed, key)``,
    *forgetting* one is always safe — the next lookup simply misses and the
    miss path recomputes the identical value, re-charging the identical
    cold probe schedule.  Eviction is therefore answer- and probe-invisible
    by construction; only wall-clock re-derivation cost changes, and the
    existing cold-schedule accounting reports that honestly (the recompute
    charges exactly what the evicted entry's hit replay would have).

    Two policies bound the footprint:

    * **capped LRU** — at most ``memo_cap`` dependency-tracked entries are
      resident across all namespaces; storing past the cap evicts the least
      recently used entry (``evictions`` counts them).  Epoch awareness
      comes for free: stale entries discarded by the base lookup leave the
      LRU ring in the same step.
    * **k-wise seed compression** — entries with an *empty* dependency set
      are pure functions of ``(seed, key)``: the per-vertex coin tapes the
      unbounded cache stores once per vertex (O(n) resident state).  The
      bounded cache never stores them at all; they are recomputed on demand
      from the O(log n)-word k-wise seed families in :mod:`repro.rand.kwise`
      that generated them, which is probe-free and deterministic.

    One protocol restriction follows from eviction: *incremental* snapshots
    (:class:`SnapshotCursor`) rely on memo tables being append-only and are
    refused here.  Chunk workers keep unbounded caches (the coordinator's
    cap never ships with an :class:`~repro.core.lca.LCASpec`), so the
    parallel fold-back path is unaffected.
    """

    __slots__ = ("memo_cap", "evictions", "_lru")

    def __init__(self, graph: Graph, memo_cap: int) -> None:
        if not isinstance(memo_cap, int) or isinstance(memo_cap, bool) or memo_cap < 1:
            raise ValueError(f"memo_cap must be a positive integer, got {memo_cap!r}")
        super().__init__(graph)
        self.memo_cap = memo_cap
        self.evictions = 0
        # Recency ring: (namespace, key) -> None, oldest first.  Holds
        # exactly the resident dependency-tracked entries.
        self._lru: "OrderedDict[tuple, None]" = OrderedDict()

    @property
    def resident_entries(self) -> int:
        """Number of capped memo entries currently resident (≤ ``memo_cap``)."""
        return len(self._lru)

    def lookup(self, namespace: Hashable, key: Hashable) -> Optional[MemoEntry]:
        entry = super().lookup(namespace, key)
        lru_key = (namespace, key)
        if entry is None:
            # Covers epoch-stale discards performed by the base lookup.
            self._lru.pop(lru_key, None)
        elif lru_key in self._lru:
            self._lru.move_to_end(lru_key)
        return entry

    def store(
        self, namespace: Hashable, key: Hashable, value, touched: Set[Vertex]
    ) -> MemoEntry:
        if not touched:
            # Graph-independent state (the stored random tapes): recompute
            # from the k-wise seeds instead of occupying a capped slot.
            return MemoEntry(value, self.graph.epoch, _NO_TOUCHES)
        entry = super().store(namespace, key, value, touched)
        self._lru[(namespace, key)] = None
        self._lru.move_to_end((namespace, key))
        self._evict_over_cap()
        return entry

    def _evict_over_cap(self) -> None:
        while len(self._lru) > self.memo_cap:
            namespace, key = self._lru.popitem(last=False)[0]
            table = self._memos.get(namespace)
            if table is not None:
                table.pop(key, None)
                if not table:
                    del self._memos[namespace]
            self.evictions += 1

    def snapshot(self, since: Optional[SnapshotCursor] = None) -> CacheSnapshot:
        if since is not None:
            raise RuntimeError(
                "bounded caches do not support incremental snapshots: "
                "eviction breaks the append-only cursor contract (chunk "
                "workers keep unbounded caches)"
            )
        return super().snapshot()

    def merge(self, snapshot: CacheSnapshot) -> None:
        super().merge(snapshot)
        for namespace, table in snapshot.memos.items():
            own = self._memos.get(namespace)
            if own is None:
                continue
            for key in table:
                if key in own:
                    lru_key = (namespace, key)
                    if lru_key not in self._lru:
                        self._lru[lru_key] = None
        self._evict_over_cap()

    def clear(self) -> None:
        super().clear()
        self._lru.clear()
