"""Cross-query memoization for the probe oracle.

The LCAs of the paper are pure functions of ``(graph, seed, query)``
(Definition 1.4), so every intermediate quantity an LCA derives — degrees,
neighbor-list prefixes, center sets ``S(v)``, cluster memberships,
representative sets — is itself a pure function of ``(graph, seed, vertex)``
and can be cached across queries without changing a single answer.  This is
the same observation the space-efficient-LCA line of work exploits to reuse
previously computed per-vertex state.

The probe-accounting contract
-----------------------------

Probe complexity is the paper's *model* cost, not a wall-clock cost.  The
cached fast path therefore preserves accounting exactly:

* every query is charged the probes of the **cold-cache probe schedule** —
  the sequence of ``Degree`` / ``Neighbor`` / ``Adjacency`` probes the
  algorithm would have made with an empty cache — even when the answer is
  served from memoized state;
* charges are recorded per probe kind, so per-kind breakdowns (Tables 4–5)
  match the cold path, not just totals;
* only the wall-clock work is elided: memoized values are returned from
  dictionaries and the corresponding probes are recorded in bulk.

Concretely, :meth:`~repro.core.oracle.CachedOracle.memoized` measures the
probes charged while computing a value on the first (miss) execution and
replays exactly that per-kind probe delta on every later hit.  Because a
memoized computation's probe cost is itself a pure function of
``(graph, seed, key)``, the replayed cost equals the cold cost, and an
equivalence test (``tests/test_backend_equivalence.py``) enforces identical
per-query probe totals between the cold and cached paths.

One observable difference is *budget* enforcement granularity: a
:class:`~repro.core.probes.ProbeCounter` budget still trips on the same
query, but bulk recording may overshoot the budget by the size of the last
bulk charge instead of stopping at exactly ``budget + 1`` probes.  Budgeted
counters (the lower-bound experiments) use the cold path.

:class:`OracleCache` is the storage: per-vertex read caches for the three
probe primitives plus named memo tables for derived per-vertex state.  It is
owned by a :class:`~repro.core.oracle.CachedOracle` and lives as long as its
LCA, so state is reused across queries *and* across materializations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Hashable, Optional, Tuple

from ..graphs.graph import Graph, Vertex

#: Leaf types allowed inside a *portable* memo namespace (see
#: :func:`is_portable_namespace`).
_PORTABLE_LEAVES = (str, int, float, bool, type(None), bytes)


def is_portable_namespace(namespace: Hashable) -> bool:
    """Whether a memo namespace survives a process boundary.

    Portable namespaces are built only from primitives (and tuples thereof,
    plus frozen dataclasses such as :class:`~repro.core.seed.Seed` or the
    parameter objects, which compare by value): equal on both sides of a
    pickle round trip, so per-worker memo tables under them can be folded
    back into the coordinator's cache.  Namespaces keyed by live objects
    (the ``(system_object, role)`` convention for per-vertex derived state)
    are process-local by construction and are excluded from snapshots.
    """
    if isinstance(namespace, bool):  # bool before int for clarity; both fine
        return True
    if isinstance(namespace, _PORTABLE_LEAVES):
        return True
    if isinstance(namespace, tuple):
        return all(is_portable_namespace(item) for item in namespace)
    # Frozen dataclasses (Seed, *Params) hash/compare by value and pickle
    # cleanly; detect them structurally instead of importing every type.
    params = getattr(namespace, "__dataclass_params__", None)
    if params is not None and params.frozen:
        fields = getattr(namespace, "__dataclass_fields__", {})
        return all(
            is_portable_namespace(getattr(namespace, name)) for name in fields
        )
    return False


@dataclass
class CacheSnapshot:
    """Portable slice of an :class:`OracleCache` (picklable, mergeable).

    Contains the hit/miss statistics plus every memo table whose namespace
    is portable (:func:`is_portable_namespace`) — in practice the
    query-answer memo, whose values ``(answer, cold ProbeSnapshot)`` are pure
    functions of ``(graph, seed, query)``.  Because the values are pure,
    merging snapshots from any number of workers in any order produces the
    same cache: a fold is deterministic by construction.
    """

    hits: int = 0
    misses: int = 0
    memos: Dict[Hashable, dict] = field(default_factory=dict)

    @property
    def entries(self) -> int:
        return sum(len(table) for table in self.memos.values())


@dataclass
class SnapshotCursor:
    """Progress marker for incremental snapshots (see :meth:`OracleCache.snapshot`).

    Remembers how much state an earlier snapshot already exported — the
    stats counters and the per-namespace entry counts — so the next
    snapshot through the same cursor carries only the delta.  Memo tables
    are append-only (entries are pure values, never invalidated), so "the
    first ``n`` items are already exported" is a complete description.
    """

    hits: int = 0
    misses: int = 0
    counts: Dict[Hashable, int] = field(default_factory=dict)


@dataclass
class CacheStats:
    """Hit/miss counters for memoized derived state (reporting only)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


class OracleCache:
    """Memo tables and raw-read facade backing a ``CachedOracle``.

    All accessors are **probe-free**: they read the graph directly and never
    touch a probe counter.  Charging the model cost is the caller's job (see
    the module docstring for the contract).

    Raw reads (neighbor rows, degrees, adjacency rows) delegate to the lazy
    structures the graph backends already maintain — cached neighbor views
    and per-vertex ``adjacency_row`` dicts — so the adjacency data exists in
    exactly one place per graph; this object only owns the memo tables for
    *derived* per-LCA state.
    """

    __slots__ = ("graph", "stats", "_memos")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.stats = CacheStats()
        self._memos: Dict[Hashable, dict] = {}

    # ------------------------------------------------------------------ #
    # Raw reads (probe-free; served by the graph's own lazy caches)
    # ------------------------------------------------------------------ #
    def degree(self, v: Vertex) -> int:
        # Both backends answer degree in O(1) without materializing the
        # neighbor view (len of the adjacency list / indptr difference).
        return self.graph.degree(v)

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        return self.graph.neighbors(v)

    def index_row(self, v: Vertex) -> Dict[Vertex, int]:
        """The ``{neighbor: position}`` row of ``v`` (read-only)."""
        return self.graph.adjacency_row(v)

    # ------------------------------------------------------------------ #
    # Memo tables for derived per-vertex state
    # ------------------------------------------------------------------ #
    def memo(self, namespace: Hashable) -> dict:
        """A named memo table (created on first use).

        Callers use ``(system_object, role)`` tuples as namespaces so that
        distinct center systems / samplers (distinct seeds) never share
        entries.  Keeping the object itself in the key also pins it alive,
        ruling out ``id()`` reuse bugs.
        """
        table = self._memos.get(namespace)
        if table is None:
            table = {}
            self._memos[namespace] = table
        return table

    def memo_sizes(self) -> Dict[str, int]:
        """Entry counts per memo namespace (debugging / reporting)."""
        return {repr(namespace): len(table) for namespace, table in self._memos.items()}

    # ------------------------------------------------------------------ #
    # Snapshot / merge (the parallel-execution fold-back protocol)
    # ------------------------------------------------------------------ #
    def snapshot(self, since: Optional[SnapshotCursor] = None) -> CacheSnapshot:
        """Export the portable slice of this cache (see :class:`CacheSnapshot`).

        Only memo tables under portable namespaces are included; per-vertex
        derived state keyed by live system objects stays local.  Tables are
        shallow-copied so the snapshot is stable under further queries.

        With ``since`` (a :class:`SnapshotCursor`, updated in place) only
        the state added after the cursor's last use is exported — chunk
        workers use this so repeated snapshots never re-ship or double-count
        already-exported entries and statistics.
        """
        if since is None:
            return CacheSnapshot(
                hits=self.stats.hits,
                misses=self.stats.misses,
                memos={
                    namespace: dict(table)
                    for namespace, table in self._memos.items()
                    if table and is_portable_namespace(namespace)
                },
            )
        memos: Dict[Hashable, dict] = {}
        for namespace, table in self._memos.items():
            if not table or not is_portable_namespace(namespace):
                continue
            exported = since.counts.get(namespace, 0)
            if len(table) > exported:
                # Memo tables are append-only dicts; insertion order makes
                # "everything after the first `exported` items" the delta.
                memos[namespace] = dict(islice(table.items(), exported, None))
            since.counts[namespace] = len(table)
        snapshot = CacheSnapshot(
            hits=self.stats.hits - since.hits,
            misses=self.stats.misses - since.misses,
            memos=memos,
        )
        since.hits = self.stats.hits
        since.misses = self.stats.misses
        return snapshot

    def merge(self, snapshot: CacheSnapshot) -> None:
        """Fold a worker's portable cache slice into this cache.

        Memoized values under a portable namespace are pure functions of
        ``(graph, seed, key)``, so entries present on both sides are equal
        and first-write-wins merging is deterministic regardless of worker
        scheduling.  Hit/miss statistics accumulate (telemetry only —
        answers and probe accounting never depend on them).
        """
        self.stats.hits += snapshot.hits
        self.stats.misses += snapshot.misses
        for namespace, table in snapshot.memos.items():
            own = self.memo(namespace)
            for key, value in table.items():
                own.setdefault(key, value)

    def clear(self) -> None:
        """Drop all memoized state (answers are unaffected; only speed is)."""
        self._memos.clear()
