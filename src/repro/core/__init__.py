"""Core LCA framework: probe oracle, probe accounting, base classes, seeds."""

from .errors import (
    ConsistencyError,
    GraphError,
    NotAnEdgeError,
    ParameterError,
    ProbeBudgetExceededError,
    ReproError,
    SeedError,
    UnknownVertexError,
)
from .ids import (
    canonical_edge,
    canonical_edge_id,
    canonicalize_edges,
    min_edge_by_canonical_id,
    min_edge_by_ordered_id,
    ordered_edge_id,
    vertex_id,
)
from .lca import (
    BatchQueryResult,
    CombinedLCA,
    EdgeQueryResult,
    KeepAllLCA,
    LCADescription,
    MaterializedSpanner,
    PAPER_RESULTS,
    SpannerLCA,
)
from .cache import CacheStats, OracleCache
from .oracle import AdjacencyListOracle, CachedOracle, SubgraphOracle
from .probes import (
    ADJACENCY,
    DEGREE,
    NEIGHBOR,
    ProbeCounter,
    ProbeMeasurement,
    ProbeSnapshot,
    ProbeStatistics,
    nearest_rank_percentile,
)
from .seed import Seed

__all__ = [
    "ReproError",
    "GraphError",
    "UnknownVertexError",
    "NotAnEdgeError",
    "ProbeBudgetExceededError",
    "ParameterError",
    "SeedError",
    "ConsistencyError",
    "vertex_id",
    "ordered_edge_id",
    "canonical_edge_id",
    "canonical_edge",
    "canonicalize_edges",
    "min_edge_by_ordered_id",
    "min_edge_by_canonical_id",
    "SpannerLCA",
    "CombinedLCA",
    "KeepAllLCA",
    "EdgeQueryResult",
    "BatchQueryResult",
    "MaterializedSpanner",
    "LCADescription",
    "PAPER_RESULTS",
    "AdjacencyListOracle",
    "CachedOracle",
    "OracleCache",
    "CacheStats",
    "SubgraphOracle",
    "ProbeCounter",
    "ProbeSnapshot",
    "ProbeMeasurement",
    "ProbeStatistics",
    "nearest_rank_percentile",
    "NEIGHBOR",
    "DEGREE",
    "ADJACENCY",
    "Seed",
]
