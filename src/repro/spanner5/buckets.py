"""H_bckt: the cluster-partitioning (bucketing) method (Section 3, Idea III).

Centers ``S`` are sampled only among vertices of degree at most ``Δ_super``
with probability Θ(log n / Δ_med).  Every vertex joins the clusters of all
sampled centers among its first ``Δ_med`` neighbors.  Each cluster ``C(s)``
is partitioned — consistently, by sorting members by ID — into buckets of
size ``Δ_med``, and exactly one edge (the one of minimum ID whose endpoints
both have degree ≥ ``Δ_med``) is kept between every pair of neighboring
buckets.  The resulting subgraph takes care of the deserted–deserted edges
E_bckt with stretch 5: for any omitted edge ``(u, v)`` and centers
``s ∈ S(u)``, ``t ∈ S(v)``, the kept bucket edge ``(u', v')`` closes the path
``u – s – u' – v' – t – v``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.ids import canonical_edge_id
from ..core.lca import SpannerLCA
from ..core.oracle import AdjacencyListOracle
from ..core.seed import SeedLike
from ..graphs.graph import Graph
from ..rand.sampler import CenterSampler
from .params import FiveSpannerParams


class DegreeBoundedCenterSystem:
    """The center set ``S`` of H_bckt: sampled vertices of degree ≤ Δ_super.

    Membership of a *vertex* in ``S`` needs one ``Degree`` probe (for the
    degree bound) plus a probe-free coin flip.  Membership of a *center* in
    ``S(w)`` (the multiple-center set of ``w``) additionally needs one
    ``Adjacency`` probe, exactly as in the 3-spanner construction.
    """

    def __init__(
        self,
        seed: SeedLike,
        probability: float,
        prefix: int,
        degree_bound: int,
        independence: int,
    ) -> None:
        self.prefix = max(1, int(prefix))
        self.degree_bound = int(degree_bound)
        self.sampler = CenterSampler(seed, probability, independence)

    # -- probe-counted operations -------------------------------------- #
    def is_center(self, oracle: AdjacencyListOracle, vertex: int) -> bool:
        """Whether ``vertex ∈ S`` (coin flip + one ``Degree`` probe).

        The ``Degree`` probe is only spent when the coin flip succeeds, so
        the cold probe cost is data dependent; the memoized fast path stores
        the flip outcome next to the answer and replays exactly that cost.
        """
        if oracle.supports_memo:
            elected, flipped = self._election(oracle, vertex)
            if flipped:
                oracle.charge(degree=1)
            return elected
        if not self.sampler.is_center(vertex):
            return False
        return oracle.degree(vertex) <= self.degree_bound

    def _election(self, oracle: AdjacencyListOracle, vertex: int):
        """Memoized ``(elected, coin flip)`` pair (probe-free; cached oracle).

        A successful flip reads the vertex's degree, so the entry depends on
        (and is invalidated with) the vertex's row; a failed flip is pure in
        ``(seed, vertex)`` and survives every mutation.
        """

        def compute():
            flipped = self.sampler.is_center(vertex)
            elected = flipped and oracle.cache.degree(vertex) <= self.degree_bound
            return (elected, flipped)

        return oracle.cache.memoize((self, "election"), vertex, compute)

    def center_set(self, oracle: AdjacencyListOracle, vertex: int) -> List[int]:
        """``S(vertex)``: sampled bounded-degree vertices among the prefix."""
        if oracle.supports_memo:
            ordered, _, scanned, flips = self.prefix_sets(oracle, vertex)
            oracle.charge(degree=1 + flips, neighbor=scanned)
            return list(ordered)
        candidates = oracle.neighbors_prefix(vertex, self.prefix)
        return [w for w in candidates if self.is_center(oracle, w)]

    def prefix_sets(self, oracle: AdjacencyListOracle, vertex: int):
        """Memoized ``(ordered S(v), set, prefix length, #successful flips)``.

        Probe-free (cached oracle only); ``center_set`` charges the cold
        schedule — one ``Degree`` + ``scanned`` ``Neighbor`` probes for the
        prefix, plus one ``Degree`` probe per candidate whose coin flip
        succeeded (the degree-bound check of :meth:`is_center`).
        """
        def compute():
            row = oracle.cache.neighbors(vertex)
            scanned = min(len(row), self.prefix)
            ordered = []
            flips = 0
            for w in row[:scanned]:
                elected, flipped = self._election(oracle, w)
                if flipped:
                    flips += 1
                if elected:
                    ordered.append(w)
            ordered = tuple(ordered)
            return (ordered, frozenset(ordered), scanned, flips)

        return oracle.cache.memoize((self, "prefix-sets"), vertex, compute)

    def in_cluster_of(
        self, oracle: AdjacencyListOracle, member: int, center: int
    ) -> bool:
        """Whether ``center ∈ S(member)`` (one ``Adjacency`` probe + checks)."""
        if not self.is_center(oracle, center):
            return False
        index = oracle.adjacency(member, center)
        return index is not None and index < self.prefix

    def is_center_edge(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        """Rule (A) of H_bckt: ``u ∈ S(v)`` or ``v ∈ S(u)``."""
        return self.in_cluster_of(oracle, u, v) or self.in_cluster_of(oracle, v, u)

    def cluster_members(self, oracle: AdjacencyListOracle, center: int) -> List[int]:
        """The cluster ``C(center) = {center} ∪ {w : center ∈ S(w)}``.

        Costs ``deg(center)`` ``Neighbor`` probes plus one ``Adjacency`` probe
        per neighbor; the degree bound on centers caps this at ``Δ_super``.
        """
        if oracle.supports_memo:

            def compute():
                kern = getattr(oracle, "kernel", None)
                if kern is not None:
                    value = kern.cluster_row(oracle, center, self.prefix)
                    if value is not None:
                        return value
                cache = oracle.cache
                row = cache.neighbors(center)
                members = [center]
                for w in row:
                    index = cache.index_row(w).get(center)
                    if index is not None and index < self.prefix:
                        members.append(w)
                return (tuple(members), len(row))

            members, degree = oracle.cache.memoize(
                (self, "cluster-members"), center, compute
            )
            oracle.charge(degree=1, neighbor=degree, adjacency=degree)
            return list(members)
        members = [center]
        for w in oracle.all_neighbors(center):
            index = oracle.adjacency(w, center)
            if index is not None and index < self.prefix:
                members.append(w)
        return members

    # -- probe-free versions (verification only) ----------------------- #
    def is_center_global(self, graph: Graph, vertex: int) -> bool:
        return (
            self.sampler.is_center(vertex)
            and graph.degree(vertex) <= self.degree_bound
        )

    def center_set_global(self, graph: Graph, vertex: int) -> List[int]:
        prefix = graph.neighbors(vertex)[: self.prefix]
        return [w for w in prefix if self.is_center_global(graph, w)]


def partition_into_buckets(members: List[int], bucket_size: int) -> List[List[int]]:
    """Partition cluster members into buckets of ``bucket_size`` by ID order.

    The partition is a pure function of the member set, so every query that
    reconstructs the same cluster obtains the same buckets (the consistency
    requirement spelled out in the paper's bucketing discussion).
    """
    ordered = sorted(members)
    size = max(1, int(bucket_size))
    return [ordered[i : i + size] for i in range(0, len(ordered), size)]


def bucket_containing(members: List[int], bucket_size: int, vertex: int) -> List[int]:
    """The bucket of ``vertex`` inside its cluster (``vertex`` must belong)."""
    for bucket in partition_into_buckets(members, bucket_size):
        if vertex in bucket:
            return bucket
    return []


class BucketComponent(SpannerLCA):
    """Rule (B) of H_bckt: one edge per pair of neighboring buckets."""

    name = "spanner5-bucket"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: FiveSpannerParams,
        centers: DegreeBoundedCenterSystem,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.centers = centers

    def stretch_bound(self) -> Optional[int]:
        return 5

    def _clusters_of(self, oracle: AdjacencyListOracle, vertex: int) -> List[int]:
        """Centers of all clusters containing ``vertex``.

        A vertex belongs to the cluster of every center in ``S(vertex)`` and,
        if it is itself a center, to its own cluster (``C(s)`` contains ``s``).
        Including the own-cluster case keeps the "minimum-ID bucket edge"
        predicate consistent when the chosen edge happens to touch a center.
        """
        centers = self.centers.center_set(oracle, vertex)
        if self.centers.is_center(oracle, vertex):
            centers = centers + [vertex]
        return centers

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        med = self.params.med_threshold
        if oracle.degree(u) < med or oracle.degree(v) < med:
            return False
        centers_u = self._clusters_of(oracle, u)
        centers_v = self._clusters_of(oracle, v)
        if not centers_u or not centers_v:
            return False

        # Per-query cache so each distinct cluster is scanned only once.
        cluster_cache: Dict[int, List[int]] = {}
        degree_cache: Dict[int, int] = {}

        def cluster(center: int) -> List[int]:
            if center not in cluster_cache:
                cluster_cache[center] = self.centers.cluster_members(oracle, center)
            return cluster_cache[center]

        def degree(vertex: int) -> int:
            if vertex not in degree_cache:
                degree_cache[vertex] = oracle.degree(vertex)
            return degree_cache[vertex]

        target_id = canonical_edge_id(u, v)
        for s in centers_u:
            bucket_u = bucket_containing(cluster(s), med, u)
            for t in centers_v:
                bucket_v = bucket_containing(cluster(t), med, v)
                best = self._minimum_bucket_edge(
                    oracle, bucket_u, bucket_v, degree
                )
                if best is not None and best == target_id:
                    return True
        return False

    def _minimum_bucket_edge(
        self,
        oracle: AdjacencyListOracle,
        bucket_a: List[int],
        bucket_b: List[int],
        degree,
    ) -> Optional[Tuple[int, int]]:
        """The minimum canonical ID among qualifying edges between buckets.

        Qualifying edges have both endpoints of degree ≥ Δ_med (the
        precondition ``E(V[Δ_med, n), V[Δ_med, n))`` of the construction).
        """
        med = self.params.med_threshold
        kern = getattr(oracle, "kernel", None)
        if kern is not None:
            value = kern.minimum_bucket_edge(oracle, bucket_a, bucket_b, med, degree)
            if value is not None:
                return value[0]
        best: Optional[Tuple[int, int]] = None
        for a in bucket_a:
            if degree(a) < med:
                continue
            for b in bucket_b:
                if a == b or degree(b) < med:
                    continue
                candidate = canonical_edge_id(a, b)
                if best is not None and candidate >= best:
                    continue
                if oracle.adjacency(a, b) is not None:
                    best = candidate
        return best
