"""H_rep: the representative method (Section 3, Idea IV).

Crowded vertices (medium degree, but most of their first ``Δ_med`` neighbors
are super-high degree) cannot be clustered through low-degree centers.
Instead every medium-band vertex ``v`` picks Θ(log n) random positions of its
neighbor list; the super-high-degree neighbors found there are its
*representatives* ``Reps(v)``.  Each representative ``x`` has (w.h.p.) centers
``S'(x)`` of the super construction among its first ``Δ_super`` neighbors, so
``v`` sits at distance 2 from the centers ``RS(v) = ∪_{x ∈ Reps(v)} S'(x)``.

The construction keeps:

* rule (A): the edge from every medium-band vertex to each of its
  representatives, and
* rule (B): the edge ``(u, v)`` (both endpoints medium-band) when ``v``
  introduces, through its representatives, a center not reachable through the
  representatives of ``u``'s earlier medium-band neighbors.

Together with the super construction (which supplies the center edges
``(x, s)`` for ``s ∈ S'(x)``) this takes care of E_rep with stretch 5:
``u – w – x' – s – x – v`` where ``w`` is the first earlier neighbor covering
the center ``s``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.lca import SpannerLCA
from ..core.oracle import AdjacencyListOracle
from ..core.seed import SeedLike
from ..graphs.graph import Graph
from ..rand.sampler import IndexSampler
from ..spanner3.centers import PrefixCenterSystem
from .params import FiveSpannerParams


class RepresentativeSystem:
    """Computation of ``Reps(v)`` and ``RS(v)``."""

    def __init__(
        self,
        seed: SeedLike,
        params: FiveSpannerParams,
        super_centers: PrefixCenterSystem,
    ) -> None:
        self.params = params
        self.super_centers = super_centers
        self._indices = IndexSampler(
            seed, params.representative_samples, params.independence
        )

    def _sampled_indices(self, oracle: AdjacencyListOracle, vertex: int) -> List[int]:
        """``distinct_indices`` with the hash evaluations memoized (probe-free).

        A pure function of ``(seed, vertex)`` — the memo entry touches no
        graph state and survives every mutation.
        """
        if not oracle.supports_memo:
            return self._indices.distinct_indices(vertex, self.params.med_threshold)
        return oracle.cache.memoize(
            (self, "indices"),
            vertex,
            lambda: self._indices.distinct_indices(
                vertex, self.params.med_threshold
            ),
        )

    def representatives(self, oracle: AdjacencyListOracle, vertex: int) -> List[int]:
        """``Reps(vertex)``: super-high-degree neighbors at sampled positions.

        Costs O(log n) ``Neighbor`` probes plus O(log n) ``Degree`` probes.
        Positions are sampled in ``[0, Δ_med)``; positions beyond the actual
        degree simply contribute nothing (the vertex is then low degree and
        its edges are kept by E_low anyway).
        """
        if oracle.supports_memo:
            found, valid, distinct = oracle.cache.memoize(
                (self, "reps"),
                vertex,
                lambda: self._representatives_raw(oracle, vertex),
            )
            oracle.charge(degree=1 + distinct, neighbor=valid)
            return list(found)
        degree = oracle.degree(vertex)
        upper = min(self.params.med_threshold, degree)
        found: List[int] = []
        seen = set()
        for index in self._indices.distinct_indices(vertex, self.params.med_threshold):
            if index >= upper:
                continue
            neighbor = oracle.neighbor(vertex, index)
            if neighbor is None or neighbor in seen:
                continue
            seen.add(neighbor)
            if oracle.degree(neighbor) > self.params.super_threshold:
                found.append(neighbor)
        return found

    def _representatives_raw(self, oracle: AdjacencyListOracle, vertex: int):
        """Probe-free ``(Reps(v), #in-range indices, #distinct neighbors)``.

        The cold schedule charges one ``Degree`` probe for ``v``, one
        ``Neighbor`` probe per sampled in-range index, and one ``Degree``
        probe per distinct neighbor seen — :meth:`representatives` replays
        exactly that.
        """
        cache = oracle.cache
        row = cache.neighbors(vertex)
        upper = min(self.params.med_threshold, len(row))
        found = []
        seen = set()
        valid = 0
        for index in self._sampled_indices(oracle, vertex):
            if index >= upper:
                continue
            valid += 1
            neighbor = row[index]
            if neighbor in seen:
                continue
            seen.add(neighbor)
            if cache.degree(neighbor) > self.params.super_threshold:
                found.append(neighbor)
        return (tuple(found), valid, len(seen))

    def reachable_centers(
        self, oracle: AdjacencyListOracle, vertex: int
    ) -> Dict[int, int]:
        """``RS(vertex)`` as a mapping center → witnessing representative."""
        centers: Dict[int, int] = {}
        for representative in self.representatives(oracle, vertex):
            for center in self.super_centers.center_set(oracle, representative):
                centers.setdefault(center, representative)
        return centers

    def covers_center(
        self, oracle: AdjacencyListOracle, vertex: int, center: int
    ) -> bool:
        """Whether some representative of ``vertex`` has ``center`` in ``S'``.

        One ``Adjacency`` probe per representative (plus the Reps probes).
        """
        for representative in self.representatives(oracle, vertex):
            if self.super_centers.in_cluster_of(oracle, representative, center):
                return True
        return False

    # -- probe-free versions (verification only) ----------------------- #
    def representatives_global(self, graph: Graph, vertex: int) -> List[int]:
        degree = graph.degree(vertex)
        upper = min(self.params.med_threshold, degree)
        neighbors = graph.neighbors(vertex)
        found: List[int] = []
        seen = set()
        for index in self._indices.distinct_indices(vertex, self.params.med_threshold):
            if index >= upper:
                continue
            neighbor = neighbors[index]
            if neighbor in seen:
                continue
            seen.add(neighbor)
            if graph.degree(neighbor) > self.params.super_threshold:
                found.append(neighbor)
        return found


class RepresentativeEdgeComponent(SpannerLCA):
    """Rule (A) of H_rep: keep the edges from a vertex to its representatives."""

    name = "spanner5-rep-edges"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: FiveSpannerParams,
        system: RepresentativeSystem,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.system = system

    def stretch_bound(self) -> Optional[int]:
        return 1

    def _is_representative_edge(
        self, oracle: AdjacencyListOracle, owner: int, candidate: int
    ) -> bool:
        degree = oracle.degree(owner)
        if not self.params.in_medium_band(degree):
            return False
        return candidate in self.system.representatives(oracle, owner)

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return self._is_representative_edge(
            oracle, u, v
        ) or self._is_representative_edge(oracle, v, u)


class RepresentativeComponent(SpannerLCA):
    """Rule (B) of H_rep: the new-center-through-representatives rule."""

    name = "spanner5-rep"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: FiveSpannerParams,
        system: RepresentativeSystem,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.system = system

    def stretch_bound(self) -> Optional[int]:
        return 5

    def _kept_by_scan(self, oracle: AdjacencyListOracle, scanner: int, other: int) -> bool:
        """Evaluate rule (B) with ``scanner`` traversing its neighbor list."""
        if not self.params.in_medium_band(oracle.degree(scanner)):
            return False
        if not self.params.in_medium_band(oracle.degree(other)):
            return False
        index = oracle.adjacency(scanner, other)
        if index is None:
            return False
        remaining = set(self.system.reachable_centers(oracle, other).keys())
        if not remaining:
            return False
        for j in range(index):
            if not remaining:
                return False
            earlier = oracle.neighbor(scanner, j)
            if earlier is None:
                break
            if not self.params.in_medium_band(oracle.degree(earlier)):
                continue
            earlier_reps = self.system.representatives(oracle, earlier)
            if not earlier_reps:
                continue
            remaining = {
                center
                for center in remaining
                if not any(
                    self.system.super_centers.in_cluster_of(oracle, rep, center)
                    for rep in earlier_reps
                )
            }
        return bool(remaining)

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return self._kept_by_scan(oracle, u, v) or self._kept_by_scan(oracle, v, u)
