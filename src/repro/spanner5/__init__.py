"""LCA for 5-spanners (Section 3 of the paper; Theorems 3.4 and 3.5)."""

from .buckets import (
    BucketComponent,
    DegreeBoundedCenterSystem,
    bucket_containing,
    partition_into_buckets,
)
from .classify import CROWDED, DESERTED, OUTSIDE, DesertedCrowdedClassifier
from .lca import FiveSpannerLCA
from .params import FiveSpannerParams
from .representatives import (
    RepresentativeComponent,
    RepresentativeEdgeComponent,
    RepresentativeSystem,
)

__all__ = [
    "BucketComponent",
    "DegreeBoundedCenterSystem",
    "partition_into_buckets",
    "bucket_containing",
    "DesertedCrowdedClassifier",
    "DESERTED",
    "CROWDED",
    "OUTSIDE",
    "FiveSpannerLCA",
    "FiveSpannerParams",
    "RepresentativeSystem",
    "RepresentativeEdgeComponent",
    "RepresentativeComponent",
]
