"""The final 5-spanner LCA (Section 3; Theorems 3.4 and 3.5).

The spanner is the union of the sub-constructions of Table 2:

* E_low  — edges with a low-degree endpoint are kept outright,
* E_bckt — cluster bucketing (rules A and B of H_bckt),
* E_rep  — representatives (rules A and B of H_rep),
* E_super — the generalized H_super block construction with threshold
  ``Δ_super = n^{1 - 1/(2r)}`` plus the S' center edges it relies on.

With ``r = 3`` (the default) this gives the general-graph 5-spanner of
Theorem 3.4: Õ(n^{4/3}) edges with Õ(n^{5/6}) probes per query.  Larger ``r``
realizes Theorem 3.5 for graphs of minimum degree ``n^{1/2 - 1/(2r)}``.
"""

from __future__ import annotations

from typing import Optional

from ..core.lca import CombinedLCA
from ..core.registry import register
from ..core.seed import Seed, SeedLike
from ..graphs.graph import Graph
from ..spanner3.centers import PrefixCenterSystem
from ..spanner3.components import (
    CenterEdgeComponent,
    LowDegreeComponent,
    SuperBlockComponent,
)
from .buckets import BucketComponent, DegreeBoundedCenterSystem
from .classify import DesertedCrowdedClassifier
from .params import FiveSpannerParams
from .representatives import (
    RepresentativeComponent,
    RepresentativeEdgeComponent,
    RepresentativeSystem,
)


class FiveSpannerLCA(CombinedLCA):
    """LCA for 5-spanners with Õ(n^{1+1/r}) edges and Õ(n^{1-1/(2r)}) probes."""

    name = "spanner5"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: Optional[FiveSpannerParams] = None,
        stretch_parameter: int = 3,
        hitting_constant: float = 2.0,
    ) -> None:
        seed = Seed.of(seed)
        if params is None:
            params = FiveSpannerParams.for_graph(
                graph.num_vertices,
                stretch_parameter=stretch_parameter,
                hitting_constant=hitting_constant,
            )
        self.params = params
        self.classifier = DesertedCrowdedClassifier(params)

        # Center set S of H_bckt: low-degree vertices, prefix Δ_med.
        self.bucket_centers = DegreeBoundedCenterSystem(
            seed=seed.derive("spanner5/bucket-centers"),
            probability=params.bucket_center_probability,
            prefix=params.med_threshold,
            degree_bound=params.super_threshold,
            independence=params.independence,
        )
        # Center set S' shared by H_super and H_rep: prefix Δ_super.
        self.super_centers = PrefixCenterSystem(
            seed=seed.derive("spanner5/super-centers"),
            probability=params.super_center_probability,
            prefix=params.super_threshold,
            independence=params.independence,
        )
        self.representatives = RepresentativeSystem(
            seed=seed.derive("spanner5/representatives"),
            params=params,
            super_centers=self.super_centers,
        )

        components = [
            LowDegreeComponent(graph, seed, threshold=params.low_threshold),
            CenterEdgeComponent(graph, seed, systems=[self.super_centers]),
            _BucketCenterEdges(graph, seed, self.bucket_centers),
            BucketComponent(graph, seed, params=params, centers=self.bucket_centers),
            RepresentativeEdgeComponent(
                graph, seed, params=params, system=self.representatives
            ),
            RepresentativeComponent(
                graph, seed, params=params, system=self.representatives
            ),
            SuperBlockComponent(
                graph,
                seed,
                threshold=params.super_threshold,
                centers=self.super_centers,
            ),
        ]
        super().__init__(graph, seed, components)

    def stretch_bound(self) -> Optional[int]:
        return 5


class _BucketCenterEdges(CenterEdgeComponent):
    """Center edges of the degree-bounded system S (rule A of H_bckt)."""

    name = "spanner5-bucket-center-edges"

    def __init__(self, graph: Graph, seed: SeedLike, system: DegreeBoundedCenterSystem) -> None:
        # CenterEdgeComponent only relies on ``is_center_edge``; the bucket
        # system provides the same interface with its degree bound applied.
        super().__init__(graph, seed, systems=[system])


@register("spanner5")
def _make_five_spanner(graph: Graph, seed: SeedLike, **kwargs) -> FiveSpannerLCA:
    return FiveSpannerLCA(graph, seed, **kwargs)


@register("spanner5-min-degree")
def _make_five_spanner_min_degree(
    graph: Graph, seed: SeedLike, stretch_parameter: int = 4, **kwargs
) -> FiveSpannerLCA:
    """Theorem 3.5 variant: sparser 5-spanners for min-degree graphs."""
    return FiveSpannerLCA(graph, seed, stretch_parameter=stretch_parameter, **kwargs)
