"""Parameters of the 5-spanner LCA (Section 3).

For a parameter ``r ≥ 2`` the construction uses three degree thresholds

* ``Δ_low  = n^{1/r}``
* ``Δ_med  = n^{1/2 - 1/(2r)}``
* ``Δ_super = n^{1 - 1/(2r)}``

With ``r = 3`` (the value used for general graphs) these simplify to
``Δ_low = Δ_med = n^{1/3}`` and ``Δ_super = n^{5/6}``, and the four edge
classes E_low / E_bckt / E_rep / E_super of Table 2 cover every edge.  For
``r > 3`` the construction matches Theorem 3.5 and assumes the input graph
has minimum degree at least ``Δ_med``.

Implementation note: edges incident to a vertex of degree ≤ ``Δ_med`` are
always kept (our E_low threshold is ``max(Δ_low, Δ_med)``, which equals
``Δ_low`` for every ``r ≤ 3``).  This keeps the stretch guarantee
unconditional for every ``r`` — for ``r = 3``, the general-graph case, it is
exactly the paper's rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ParameterError
from ..rand.kwise import recommended_independence
from ..rand.sampler import hitting_probability, log_count


@dataclass(frozen=True)
class FiveSpannerParams:
    """Concrete thresholds and probabilities of the 5-spanner construction."""

    num_vertices: int
    stretch_parameter: int
    #: E_low threshold (edges with an endpoint of degree ≤ this are kept).
    low_threshold: int
    #: Δ_med — block/bucket size and the lower end of the "medium" band.
    med_threshold: int
    #: Δ_super — super-high degree threshold (also S' prefix and block size).
    super_threshold: int
    #: Election probability of the bucket center set S (Θ(log n / Δ_med)).
    bucket_center_probability: float
    #: Election probability of the super center set S' (Θ(log n / Δ_super)).
    super_center_probability: float
    #: Number of random neighbor indices drawn for Reps(v) (Θ(log n)).
    representative_samples: int
    #: Hash family independence (Θ(log n)).
    independence: int

    @classmethod
    def for_graph(
        cls,
        num_vertices: int,
        stretch_parameter: int = 3,
        hitting_constant: float = 2.0,
        representative_constant: float = 3.0,
        independence: int | None = None,
    ) -> "FiveSpannerParams":
        """Derive parameters from the graph size and ``r``.

        ``stretch_parameter`` is the paper's ``r``; ``r = 3`` targets general
        graphs (Theorem 3.4), larger ``r`` targets graphs with minimum degree
        ``n^{1/2 - 1/(2r)}`` (Theorem 3.5).
        """
        if num_vertices < 1:
            raise ParameterError("the graph must have at least one vertex")
        if stretch_parameter < 2:
            raise ParameterError("the stretch parameter r must be at least 2")
        n = int(num_vertices)
        r = int(stretch_parameter)
        low = max(1, int(math.ceil(n ** (1.0 / r))))
        med = max(1, int(math.ceil(n ** (0.5 - 1.0 / (2.0 * r)))))
        super_ = max(med, int(math.ceil(n ** (1.0 - 1.0 / (2.0 * r)))))
        effective_low = max(low, med)
        if independence is None:
            independence = recommended_independence(n)
        return cls(
            num_vertices=n,
            stretch_parameter=r,
            low_threshold=effective_low,
            med_threshold=med,
            super_threshold=super_,
            bucket_center_probability=hitting_probability(med, n, hitting_constant),
            super_center_probability=hitting_probability(super_, n, hitting_constant),
            representative_samples=log_count(n, representative_constant),
            independence=int(independence),
        )

    # ------------------------------------------------------------------ #
    # Vertex / edge classification (Table 2)
    # ------------------------------------------------------------------ #
    def in_medium_band(self, degree: int) -> bool:
        """``deg(v) ∈ [Δ_med, Δ_super]`` — the V[Δ_med, Δ_super] band."""
        return self.med_threshold <= degree <= self.super_threshold

    def is_super_degree(self, degree: int) -> bool:
        """``deg(v) > Δ_super``."""
        return degree > self.super_threshold

    def classify_edge(self, degree_u: int, degree_v: int) -> str:
        """Edge class per Table 2: 'low', 'super' or 'medium'.

        The medium class is further split into E_bckt / E_rep by the
        deserted/crowded classification, which requires probes; the split is
        performed by :class:`~repro.spanner5.classify.DesertedCrowdedClassifier`.
        """
        if min(degree_u, degree_v) <= self.low_threshold:
            return "low"
        if max(degree_u, degree_v) > self.super_threshold:
            return "super"
        return "medium"

    # ------------------------------------------------------------------ #
    # Theoretical targets
    # ------------------------------------------------------------------ #
    def expected_edge_bound(self) -> float:
        """Õ(n^{1 + 1/r}) — n^{4/3} for the general-graph case."""
        return float(self.num_vertices) ** (1.0 + 1.0 / self.stretch_parameter)

    def expected_probe_bound(self) -> float:
        """Õ(n^{1 - 1/(2r)}) — n^{5/6} for the general-graph case."""
        return float(self.num_vertices) ** (1.0 - 1.0 / (2.0 * self.stretch_parameter))
