"""Deserted / crowded classification of medium-degree vertices (Def. 3.1).

A vertex ``v`` with ``Δ_med ≤ deg(v) ≤ Δ_super`` is *deserted* when at least
half of its first ``Δ_med`` neighbors have degree at most ``Δ_super`` (such
vertices can be clustered through low-degree centers, handled by H_bckt);
otherwise it is *crowded* (many super-high-degree neighbors, handled through
representatives by H_rep).

The classification costs ``O(Δ_med)`` probes: the first ``Δ_med`` neighbors
plus one ``Degree`` probe each.
"""

from __future__ import annotations

from ..core.oracle import AdjacencyListOracle
from ..graphs.graph import Graph
from .params import FiveSpannerParams

DESERTED = "deserted"
CROWDED = "crowded"
OUTSIDE = "outside"


class DesertedCrowdedClassifier:
    """Classifies vertices of the medium band as deserted or crowded."""

    def __init__(self, params: FiveSpannerParams) -> None:
        self.params = params

    def classify(self, oracle: AdjacencyListOracle, vertex: int) -> str:
        """Return ``'deserted'``, ``'crowded'`` or ``'outside'`` for ``vertex``."""
        degree = oracle.degree(vertex)
        if not self.params.in_medium_band(degree):
            return OUTSIDE
        prefix = oracle.neighbors_prefix(vertex, self.params.med_threshold)
        if not prefix:
            return DESERTED
        bounded = sum(
            1 for w in prefix if oracle.degree(w) <= self.params.super_threshold
        )
        if 2 * bounded >= len(prefix):
            return DESERTED
        return CROWDED

    def is_deserted(self, oracle: AdjacencyListOracle, vertex: int) -> bool:
        return self.classify(oracle, vertex) == DESERTED

    def is_crowded(self, oracle: AdjacencyListOracle, vertex: int) -> bool:
        return self.classify(oracle, vertex) == CROWDED

    # ------------------------------------------------------------------ #
    # Probe-free version for reports / verification
    # ------------------------------------------------------------------ #
    def classify_global(self, graph: Graph, vertex: int) -> str:
        degree = graph.degree(vertex)
        if not self.params.in_medium_band(degree):
            return OUTSIDE
        prefix = graph.neighbors(vertex)[: self.params.med_threshold]
        if not prefix:
            return DESERTED
        bounded = sum(
            1 for w in prefix if graph.degree(w) <= self.params.super_threshold
        )
        if 2 * bounded >= len(prefix):
            return DESERTED
        return CROWDED
