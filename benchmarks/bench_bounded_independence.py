"""Section 5 — bounded independence: seed sizes and hitting-set quality.

Theorems 1.1 and 1.2 claim that O(log² n) random bits suffice.  This
benchmark reports the concrete seed-bit cost charged by Lemma 5.2 for the
hash functions each construction uses, and empirically verifies the two
hitting-set properties (HI)/(HII) of Section 5 under Θ(log n)-wise
independence, plus the all-zero-block behaviour of the rank construction of
Section 5.2 that drives the O(k) induction of Lemma 5.5.
"""

from __future__ import annotations

import math

from repro import format_table
from repro.rand import (
    CenterSampler,
    RankAssigner,
    hitting_probability,
    recommended_independence,
    seed_bit_cost,
)

from conftest import print_section


def test_seed_bit_costs(benchmark):
    rows = []
    for n in (10**4, 10**6, 10**9):
        d = recommended_independence(n)
        per_function = seed_bit_cost(n, d)
        rows.append(
            {
                "n": n,
                "independence d=Θ(log n)": d,
                "bits per hash function": per_function,
                "3-spanner (2 functions)": 2 * per_function,
                "O(k²), k=3 (k+3 functions)": 6 * per_function,
                "log²(n)": int(math.log2(n) ** 2),
            }
        )
    print_section("Section 5 — random seed sizes (Lemma 5.2)", format_table(rows))
    for row in rows:
        # O(log² n) with a small constant
        assert row["bits per hash function"] <= 4 * row["log²(n)"] + 64

    benchmark(lambda: seed_bit_cost(10**6, recommended_independence(10**6)))


def test_hitting_set_properties(benchmark):
    """(HI): |S| ≈ pn; (HII): every Δ-prefix contains Θ(log n) centers."""
    n, delta = 20_000, 400
    probability = hitting_probability(delta, n, multiplier=2.0)
    sampler = CenterSampler(seed=7, probability=probability, independence=recommended_independence(n))

    num_centers = sum(1 for v in range(n) if sampler.is_center(v))
    expected = probability * n

    misses = 0
    min_hits = float("inf")
    blocks = 200
    for b in range(blocks):
        neighborhood = range(b * delta, (b + 1) * delta)
        hits = sum(1 for v in neighborhood if sampler.is_center(v))
        min_hits = min(min_hits, hits)
        if hits == 0:
            misses += 1

    rows = [
        {"property": "(HI) |S|", "expected": int(expected), "measured": num_centers},
        {
            "property": "(HII) min centers per Δ-prefix",
            "expected": f"Θ(log n) ≈ {int(2 * math.log(n))}",
            "measured": int(min_hits),
        },
        {"property": "(HII) prefixes missed", "expected": 0, "measured": misses},
    ]
    print_section("Section 5 — hitting-set properties under Θ(log n)-wise independence", format_table(rows))

    assert abs(num_centers - expected) < 0.25 * expected
    assert misses == 0

    benchmark(lambda: sum(1 for v in range(2000) if sampler.is_center(v)))


def test_rank_block_distribution(benchmark):
    """Section 5.2: each N-bit rank block is all-zero with probability 2^{-N},
    which is what makes the rank induction terminate in O(k) steps."""
    n, k = 4096, 3
    ranks = RankAssigner.for_graph(seed=3, num_vertices=n, stretch_parameter=k, independence=16)
    bits = ranks.bits_per_block
    zero_counts = []
    for block_index in range(k):
        zeros = sum(1 for v in range(n) if ranks.block(v, block_index) == 0)
        zero_counts.append(zeros)
    expected = n / 2**bits
    rows = [
        {
            "block": i + 1,
            "bits": bits,
            "all-zero blocks measured": count,
            "expected n/2^N": int(expected),
        }
        for i, count in enumerate(zero_counts)
    ]
    print_section("Section 5.2 — rank block statistics", format_table(rows))
    for count in zero_counts:
        assert abs(count - expected) < 0.5 * expected + 10

    benchmark(lambda: [ranks.rank(v) for v in range(500)])
