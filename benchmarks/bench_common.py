"""Shared payload conventions for the ``BENCH_*.json`` artifacts.

Every benchmark that writes a ``BENCH_*.json`` file at the repository root
builds its payload on :func:`payload_header`, so all artifacts carry the
same machine-context block:

* ``benchmark`` — the artifact's name (``bench_service``, ...);
* ``python`` / ``machine`` — interpreter version and architecture;
* ``cpu_count`` — usable CPUs (:func:`cpu_count`, affinity-aware);
* ``floor_enforced`` — whether the benchmark's acceptance floor was
  actually asserted on this host.  Single-vCPU runners cannot exhibit
  parallel speedups and perf floors are meaningless there; recording the
  flag next to the numbers keeps the artifacts honest instead of silently
  green.

The module is named ``bench_common`` (not ``conftest``) so it can be
imported explicitly from any benchmark file without pytest magic.
"""

from __future__ import annotations

import os
import platform
from typing import Dict


def cpu_count() -> int:
    """Usable CPUs for this process (affinity mask, not the host total)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def payload_header(benchmark: str, floor_enforced: bool = True) -> Dict[str, object]:
    """The common leading block of every ``BENCH_*.json`` payload."""
    return {
        "benchmark": benchmark,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count(),
        "floor_enforced": bool(floor_enforced),
    }
