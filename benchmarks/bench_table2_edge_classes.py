"""Table 2 — edge categorization of the 5-spanner construction.

The paper's Table 2 lists, for each edge class of the 5-spanner construction
(E_low, E_bckt, E_rep, E_super), the bound on the number of spanner edges and
the probe complexity of the corresponding sub-LCA.  This benchmark measures,
on a degree-skewed workload:

* how many input edges fall in each class,
* how many edges each sub-construction contributes to the spanner,
* the maximum probes spent by each sub-construction per query.

Shape to check: E_low dominates the edge count on the skewed graph, the
probe-heavy classes are the medium/super ones, and every per-class probe
figure stays far below reading the graph.
"""

from __future__ import annotations

import random

from repro import format_table
from repro.spanner5 import CROWDED, DESERTED, FiveSpannerLCA

from conftest import print_section


def _classify(lca, graph, u, v):
    params = lca.params
    du, dv = graph.degree(u), graph.degree(v)
    label = params.classify_edge(du, dv)
    if label != "medium":
        return f"E_{label}"
    cu = lca.classifier.classify_global(graph, u)
    cv = lca.classifier.classify_global(graph, v)
    if cu == DESERTED and cv == DESERTED:
        return "E_bckt"
    if CROWDED in (cu, cv):
        return "E_rep"
    return "E_bckt"


def test_table2_edge_classes(benchmark, skewed_benchmark_graph):
    graph = skewed_benchmark_graph
    lca = FiveSpannerLCA(graph, seed=9, hitting_constant=1.0)

    class_counts = {}
    for (u, v) in graph.edges():
        label = _classify(lca, graph, u, v)
        class_counts[label] = class_counts.get(label, 0) + 1

    # Per-component spanner contributions and probe costs, measured on a
    # random edge sample (full materialization of every component separately
    # would repeat identical work four times).
    rng = random.Random(3)
    sample = rng.sample(list(graph.edges()), min(400, graph.num_edges))
    component_rows = []
    for component in lca.components:
        kept = 0
        max_probes = 0
        for (u, v) in sample:
            outcome = component.query_with_stats(u, v)
            kept += int(outcome.in_spanner)
            max_probes = max(max_probes, outcome.probe_total)
        component_rows.append(
            {
                "component": component.name,
                "kept (of sample)": kept,
                "sample size": len(sample),
                "max probes / query": max_probes,
            }
        )

    class_rows = [
        {"edge class": label, "# input edges": count}
        for label, count in sorted(class_counts.items())
    ]
    print_section(
        "Table 2 — 5-spanner edge categorization",
        format_table(class_rows) + "\n\n" + format_table(component_rows),
    )

    assert sum(class_counts.values()) == graph.num_edges
    # every class probe cost is far below m
    for row in component_rows:
        assert row["max probes / query"] < graph.num_edges

    u, v = sample[0]
    benchmark(lambda: lca.query(u, v))
    benchmark.extra_info["table"] = "Table 2"
