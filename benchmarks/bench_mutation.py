"""Mutation-plane benchmark: epoch-based invalidation vs full rebuild.

Simulates a serving loop under churn on the dense gnp fixture (n=500,
p=0.08, ~9.7k edges): each round applies one random edge mutation (insert
or delete, 50/50) and then answers a full read sweep over the current edge
set.  Two cache policies serve the identical schedule:

* **epoch** — one long-lived LCA; mutations bump the graph's vertex epochs
  and memoized state is discarded lazily, entry by entry, on next lookup
  (:mod:`repro.core.cache`).  Only queries whose dependency sets actually
  intersect the mutation recompute.
* **rebuild** — the policy the invalidation plane replaces: every mutation
  throws the oracle away and a fresh LCA (cold caches) answers the sweep.

Both policies must produce bit-identical answers and per-query probe totals
every round (the mutation-plane equivalence oracle), and the epoch policy
must win by ≥3x wall-clock (``BENCH_MIN_EPOCH_SPEEDUP``; the CI smoke job
relaxes the floor for noisy shared runners).  A secondary write-burst
scenario (8 writes between sweeps) is reported without a floor: bigger
bursts invalidate more state, so the ratio honestly shrinks toward the
cold path as the write share grows.

Results land in ``BENCH_mutation.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro import format_table, graphs
from repro.core.registry import create

from bench_common import payload_header
from conftest import print_section

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_mutation.json"

#: Acceptance floor for the steady-churn epoch-vs-rebuild speedup.  The
#: environment override exists for shared CI runners, not for local use.
MIN_EPOCH_SPEEDUP = float(os.environ.get("BENCH_MIN_EPOCH_SPEEDUP", "3.0"))

GRAPH_N = 500
GRAPH_P = 0.08
GRAPH_SEED = 31
LCA_SEED = 5
ROUNDS = 16
BURST_ROUNDS = 8
BURST_WRITES = 8


def _make_graph():
    return graphs.gnp_graph(GRAPH_N, GRAPH_P, seed=GRAPH_SEED).to_backend("csr")


def _mutation_plan(rounds: int, writes_per_round: int, seed: int = 7):
    """A deterministic churn schedule, valid against its own edge history."""
    graph = _make_graph()
    rng = random.Random(seed)
    edge_set = {tuple(sorted(edge)) for edge in graph.edges()}
    vertices = graph.vertices()
    plan = []
    for _ in range(rounds):
        ops = []
        for _ in range(writes_per_round):
            if rng.random() < 0.5 and len(edge_set) > 50:
                u, v = rng.choice(sorted(edge_set))
                edge_set.discard((u, v))
                ops.append(("remove", u, v))
            else:
                while True:
                    u = rng.choice(vertices)
                    v = rng.choice(vertices)
                    if u != v and tuple(sorted((u, v))) not in edge_set:
                        break
                edge_set.add(tuple(sorted((u, v))))
                ops.append(("add", u, v))
        plan.append(ops)
    return plan


def _serve_epoch(plan):
    """Long-lived LCA + lazy epoch invalidation."""
    graph = _make_graph()
    lca = create("spanner3", graph, seed=LCA_SEED)
    lca.materialize(mode="batched")  # steady-state warmup, outside the clock
    signatures = []
    started = time.perf_counter()
    for ops in plan:
        for (op, u, v) in ops:
            graph.apply_mutation(op, u, v)
        batch = lca.query_batch(list(graph.edges()))
        signatures.append((tuple(batch.answers), tuple(batch.probe_totals)))
    return time.perf_counter() - started, signatures


def _serve_rebuild(plan):
    """Full rebuild: a fresh cold LCA after every mutation burst."""
    graph = _make_graph()
    create("spanner3", graph, seed=LCA_SEED).materialize(mode="batched")
    signatures = []
    started = time.perf_counter()
    for ops in plan:
        for (op, u, v) in ops:
            graph.apply_mutation(op, u, v)
        fresh = create("spanner3", graph, seed=LCA_SEED)
        batch = fresh.query_batch(list(graph.edges()))
        signatures.append((tuple(batch.answers), tuple(batch.probe_totals)))
    return time.perf_counter() - started, signatures


def _scenario(rounds: int, writes_per_round: int):
    plan = _mutation_plan(rounds, writes_per_round)
    epoch_seconds, epoch_signatures = _serve_epoch(plan)
    rebuild_seconds, rebuild_signatures = _serve_rebuild(plan)
    # The equivalence oracle: answers and per-query probe totals must be
    # bit-identical between the mutated long-lived oracle and the
    # from-scratch rebuilds, round for round.
    assert epoch_signatures == rebuild_signatures, (
        "mutation-plane equivalence broken: epoch-invalidated answers "
        "diverged from the full rebuild"
    )
    return {
        "rounds": rounds,
        "writes_per_round": writes_per_round,
        "reads_per_round": "full edge sweep",
        "epoch_s": round(epoch_seconds, 4),
        "rebuild_s": round(rebuild_seconds, 4),
        "speedup": round(rebuild_seconds / epoch_seconds, 2),
    }


def test_epoch_invalidation_beats_full_rebuild_under_churn():
    graph = _make_graph()
    steady = _scenario(ROUNDS, writes_per_round=1)
    burst = _scenario(BURST_ROUNDS, writes_per_round=BURST_WRITES)

    rows = [
        {
            "scenario": "steady churn (1 write/round)",
            "rounds": steady["rounds"],
            "epoch s": steady["epoch_s"],
            "rebuild s": steady["rebuild_s"],
            "speedup": f"{steady['speedup']}x",
            "floor": f">= {MIN_EPOCH_SPEEDUP}x",
        },
        {
            "scenario": f"write burst ({BURST_WRITES} writes/round)",
            "rounds": burst["rounds"],
            "epoch s": burst["epoch_s"],
            "rebuild s": burst["rebuild_s"],
            "speedup": f"{burst['speedup']}x",
            "floor": "reported only",
        },
    ]
    print_section(
        "Mutation plane: epoch-based invalidation vs full rebuild under churn",
        format_table(rows)
        + "\n\nanswers + per-query probe totals bit-identical across policies "
        "in every round",
    )

    payload = {
        **payload_header("bench_mutation"),
        "graph": {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "family": f"gnp({GRAPH_N}, {GRAPH_P}, seed={GRAPH_SEED})",
        },
        "algorithm": "spanner3",
        "min_epoch_speedup_required": MIN_EPOCH_SPEEDUP,
        "steady_churn": steady,
        "write_burst": burst,
        "equivalent_across_policies": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert steady["speedup"] >= MIN_EPOCH_SPEEDUP, (
        f"epoch invalidation must beat full rebuild by at least "
        f"{MIN_EPOCH_SPEEDUP}x under steady churn, measured "
        f"{steady['speedup']}x"
    )
