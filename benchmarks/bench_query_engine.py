"""Query-engine benchmark: cold vs. cached vs. batched vs. numpy kernels.

The fast oracle backend (CSR storage + cross-query memoization + the batched
materialization engine) promises identical answers and identical per-query
probe accounting at a fraction of the wall-clock cost, and the vectorized
kernel layer (:mod:`repro.kernels`) promises the same again on top of the
batched engine.  This benchmark times all engines on the four fixture
workloads, checks the equivalence while it is at it, and writes the
measurements to ``BENCH_query_engine.json`` at the repository root — the
perf trajectory that later scaling PRs extend.

Shapes to check on the dense (n=400, p=0.10) fixture:

* batched must be ≥5× faster than the cold per-query path, and
* the numpy kernels must be ≥5× faster than the batched pure-Python path,

with byte-identical spanner edges and probe totals everywhere.  The three
scalar engine rows are pinned to ``kernel="python"`` so they stay comparable
across machines with and without numpy; the kernel row is skipped (not
failed) when numpy is absent.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import create_lca, format_table
from repro.kernels import resolve_kernel
from repro.spannerk import KSquaredSpannerLCA

from bench_common import payload_header
from conftest import print_section, tuned_k2_params

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_query_engine.json"

#: Acceptance floor for the headline speedup (dense fixture, spanner3).
#: Measured headroom is ~3.5x (typical ratios are 15-20x); the environment
#: override exists for pathologically noisy shared runners, not for local use.
MIN_BATCHED_SPEEDUP = float(os.environ.get("BENCH_MIN_BATCHED_SPEEDUP", "5.0"))

#: Acceptance floor for the vectorized-kernel speedup over the batched
#: pure-Python engine (dense fixture, spanner3, CSR backend).  Measured
#: ratios on the dense fixture are ~6-7x.
MIN_KERNEL_SPEEDUP = float(os.environ.get("BENCH_MIN_KERNEL_SPEEDUP", "5.0"))

MODES = ("cold", "cached", "batched")

#: Whether the numpy kernel layer is importable in this environment.
HAVE_NUMPY_KERNEL = resolve_kernel("auto") is not None


def _time_modes(name, graph, backend, make_lca):
    """Materialize with every engine; return (row dict, per-mode results).

    The three scalar engines run with the probe kernels pinned to "python"
    (the default "auto" would silently vectorize them wherever numpy is
    installed); a fourth "kernel" measurement reruns the batched engine
    under ``kernel="numpy"`` when available and is held to the same
    edges-and-probes equivalence key.
    """
    host = graph.to_backend(backend)
    timings = {}
    reference = None
    for mode in MODES:
        lca = make_lca(host).set_kernel("python")
        start = time.perf_counter()
        materialized = lca.materialize(mode=mode)
        elapsed = time.perf_counter() - start
        key = (
            frozenset(materialized.edges),
            tuple(materialized.probe_stats.query_totals),
        )
        if reference is None:
            reference = key
        else:
            assert key == reference, (name, backend, mode, "equivalence broken")
        timings[mode] = {
            "seconds": elapsed,
            "spanner_edges": materialized.num_edges,
            "probe_total": materialized.probe_stats.total,
            "probe_max": materialized.probe_stats.max,
        }
    if HAVE_NUMPY_KERNEL:
        lca = make_lca(host).set_kernel("numpy")
        start = time.perf_counter()
        materialized = lca.materialize(mode="batched")
        elapsed = time.perf_counter() - start
        key = (
            frozenset(materialized.edges),
            tuple(materialized.probe_stats.query_totals),
        )
        assert key == reference, (name, backend, "numpy-kernel", "equivalence broken")
        timings["kernel"] = {
            "seconds": elapsed,
            "spanner_edges": materialized.num_edges,
            "probe_total": materialized.probe_stats.total,
            "probe_max": materialized.probe_stats.max,
        }
    row = {
        "workload": name,
        "backend": backend,
        "n": host.num_vertices,
        "m": host.num_edges,
        "cold_s": round(timings["cold"]["seconds"], 4),
        "cached_s": round(timings["cached"]["seconds"], 4),
        "batched_s": round(timings["batched"]["seconds"], 4),
        "speedup_cached": round(
            timings["cold"]["seconds"] / max(timings["cached"]["seconds"], 1e-9), 2
        ),
        "speedup_batched": round(
            timings["cold"]["seconds"] / max(timings["batched"]["seconds"], 1e-9), 2
        ),
        "probe_total": timings["cold"]["probe_total"],
        "|H|": timings["cold"]["spanner_edges"],
    }
    if "kernel" in timings:
        row["kernel_s"] = round(timings["kernel"]["seconds"], 4)
        row["speedup_kernel"] = round(
            timings["batched"]["seconds"] / max(timings["kernel"]["seconds"], 1e-9), 2
        )
    return row, timings


def test_query_engine_speedups(
    dense_benchmark_graph,
    clustered_benchmark_graph,
    skewed_benchmark_graph,
    bounded_benchmark_graph,
):
    workloads = [
        (
            "spanner3 / dense gnp(400, 0.10)",
            dense_benchmark_graph,
            lambda g: create_lca("spanner3", g, seed=5, hitting_constant=1.0),
        ),
        (
            "spanner3 / skewed hubs(400)",
            skewed_benchmark_graph,
            lambda g: create_lca("spanner3", g, seed=5, hitting_constant=1.0),
        ),
        (
            "spanner5 / clustered(160)",
            clustered_benchmark_graph,
            lambda g: create_lca("spanner5", g, seed=5, hitting_constant=1.0),
        ),
        (
            "spannerk / bounded(600, d=6)",
            bounded_benchmark_graph,
            lambda g: KSquaredSpannerLCA(
                g, seed=5, params=tuned_k2_params(g.num_vertices, k=2)
            ),
        ),
    ]

    rows = []
    records = []
    for name, graph, make_lca in workloads:
        # The dense headline workload runs on both backends; the rest on CSR
        # (backend choice is probe-invisible, so one timing row suffices).
        backends = ("dict", "csr") if graph is dense_benchmark_graph else ("csr",)
        for backend in backends:
            row, timings = _time_modes(name, graph, backend, make_lca)
            rows.append(row)
            records.append({**row, "modes": timings})

    print_section(
        "Query engines: cold vs. cached vs. batched vs. numpy kernels "
        "(identical probes)",
        format_table(rows),
    )

    payload = {
        **payload_header("bench_query_engine"),
        "min_batched_speedup_required": MIN_BATCHED_SPEEDUP,
        "min_kernel_speedup_required": MIN_KERNEL_SPEEDUP,
        "numpy_kernel_available": HAVE_NUMPY_KERNEL,
        "workloads": records,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    headline = [
        r
        for r in rows
        if r["workload"].startswith("spanner3 / dense") and r["backend"] == "csr"
    ]
    assert headline, "dense headline workload missing"
    assert headline[0]["speedup_batched"] >= MIN_BATCHED_SPEEDUP, (
        "batched materialization must be at least "
        f"{MIN_BATCHED_SPEEDUP}x faster than the cold per-query path on the "
        f"dense fixture, measured {headline[0]['speedup_batched']}x"
    )
    if HAVE_NUMPY_KERNEL:
        assert headline[0]["speedup_kernel"] >= MIN_KERNEL_SPEEDUP, (
            "the numpy kernels must be at least "
            f"{MIN_KERNEL_SPEEDUP}x faster than the batched pure-Python "
            f"engine on the dense fixture, measured "
            f"{headline[0]['speedup_kernel']}x"
        )
