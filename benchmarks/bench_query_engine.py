"""Query-engine benchmark: cold vs. cached vs. batched materialization.

The fast oracle backend (CSR storage + cross-query memoization + the batched
materialization engine) promises identical answers and identical per-query
probe accounting at a fraction of the wall-clock cost.  This benchmark times
all three engines on the four fixture workloads, checks the equivalence while
it is at it, and writes the measurements to ``BENCH_query_engine.json`` at
the repository root — the first point of the perf trajectory that later
scaling PRs extend.

Shape to check: the batched engine must be ≥5× faster than the cold
per-query path on the dense (n=400, p=0.10) fixture, with byte-identical
spanner edges and probe totals everywhere.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import create_lca, format_table
from repro.spannerk import KSquaredSpannerLCA

from bench_common import payload_header
from conftest import print_section, tuned_k2_params

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_query_engine.json"

#: Acceptance floor for the headline speedup (dense fixture, spanner3).
#: Measured headroom is ~3.5x (typical ratios are 15-20x); the environment
#: override exists for pathologically noisy shared runners, not for local use.
MIN_BATCHED_SPEEDUP = float(os.environ.get("BENCH_MIN_BATCHED_SPEEDUP", "5.0"))

MODES = ("cold", "cached", "batched")


def _time_modes(name, graph, backend, make_lca):
    """Materialize with every engine; return (row dict, per-mode results)."""
    host = graph.to_backend(backend)
    timings = {}
    reference = None
    for mode in MODES:
        lca = make_lca(host)
        start = time.perf_counter()
        materialized = lca.materialize(mode=mode)
        elapsed = time.perf_counter() - start
        key = (
            frozenset(materialized.edges),
            tuple(materialized.probe_stats.query_totals),
        )
        if reference is None:
            reference = key
        else:
            assert key == reference, (name, backend, mode, "equivalence broken")
        timings[mode] = {
            "seconds": elapsed,
            "spanner_edges": materialized.num_edges,
            "probe_total": materialized.probe_stats.total,
            "probe_max": materialized.probe_stats.max,
        }
    row = {
        "workload": name,
        "backend": backend,
        "n": host.num_vertices,
        "m": host.num_edges,
        "cold_s": round(timings["cold"]["seconds"], 4),
        "cached_s": round(timings["cached"]["seconds"], 4),
        "batched_s": round(timings["batched"]["seconds"], 4),
        "speedup_cached": round(
            timings["cold"]["seconds"] / max(timings["cached"]["seconds"], 1e-9), 2
        ),
        "speedup_batched": round(
            timings["cold"]["seconds"] / max(timings["batched"]["seconds"], 1e-9), 2
        ),
        "probe_total": timings["cold"]["probe_total"],
        "|H|": timings["cold"]["spanner_edges"],
    }
    return row, timings


def test_query_engine_speedups(
    dense_benchmark_graph,
    clustered_benchmark_graph,
    skewed_benchmark_graph,
    bounded_benchmark_graph,
):
    workloads = [
        (
            "spanner3 / dense gnp(400, 0.10)",
            dense_benchmark_graph,
            lambda g: create_lca("spanner3", g, seed=5, hitting_constant=1.0),
        ),
        (
            "spanner3 / skewed hubs(400)",
            skewed_benchmark_graph,
            lambda g: create_lca("spanner3", g, seed=5, hitting_constant=1.0),
        ),
        (
            "spanner5 / clustered(160)",
            clustered_benchmark_graph,
            lambda g: create_lca("spanner5", g, seed=5, hitting_constant=1.0),
        ),
        (
            "spannerk / bounded(600, d=6)",
            bounded_benchmark_graph,
            lambda g: KSquaredSpannerLCA(
                g, seed=5, params=tuned_k2_params(g.num_vertices, k=2)
            ),
        ),
    ]

    rows = []
    records = []
    for name, graph, make_lca in workloads:
        # The dense headline workload runs on both backends; the rest on CSR
        # (backend choice is probe-invisible, so one timing row suffices).
        backends = ("dict", "csr") if graph is dense_benchmark_graph else ("csr",)
        for backend in backends:
            row, timings = _time_modes(name, graph, backend, make_lca)
            rows.append(row)
            records.append({**row, "modes": timings})

    print_section(
        "Query engines: cold vs. cached vs. batched (identical probes)",
        format_table(rows),
    )

    payload = {
        **payload_header("bench_query_engine"),
        "min_batched_speedup_required": MIN_BATCHED_SPEEDUP,
        "workloads": records,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    headline = [
        r
        for r in rows
        if r["workload"].startswith("spanner3 / dense") and r["backend"] == "csr"
    ]
    assert headline, "dense headline workload missing"
    assert headline[0]["speedup_batched"] >= MIN_BATCHED_SPEEDUP, (
        "batched materialization must be at least "
        f"{MIN_BATCHED_SPEEDUP}x faster than the cold per-query path on the "
        f"dense fixture, measured {headline[0]['speedup_batched']}x"
    )
