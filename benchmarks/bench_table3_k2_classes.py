"""Table 3 — edge categorization of the O(k²)-spanner construction.

Table 3 of the paper splits the edges into E_sparse (≥ one sparse endpoint,
handled by H_sparse) and E_dense (both endpoints dense, handled by
H^I_dense ∪ H^B_dense), with their respective size and probe bounds.  This
benchmark measures the split, the contribution of each component to the
spanner and the per-component probe costs on a bounded-degree workload.
"""

from __future__ import annotations

import random

from repro import format_table
from repro.core.oracle import AdjacencyListOracle
from repro.spannerk import KSquaredSpannerLCA, LocalView

from conftest import print_section, tuned_k2_params


def test_table3_k2_edge_classes(benchmark, bounded_benchmark_graph):
    graph = bounded_benchmark_graph
    params = tuned_k2_params(graph.num_vertices, k=2)
    # No shared cache: the per-component probe columns must reflect the true
    # per-query cost, not cache hits from earlier queries.
    lca = KSquaredSpannerLCA(graph, seed=13, params=params, shared_cache=False)

    # Sparse/dense classification of every vertex (probe-free view reuse).
    view = LocalView(
        AdjacencyListOracle(graph), params, lca.randomness, cache={}
    )
    sparse_vertices = {v for v in graph.vertices() if view.is_sparse(v)}
    edge_classes = {"E_sparse": 0, "E_dense": 0}
    for (u, v) in graph.edges():
        if u in sparse_vertices or v in sparse_vertices:
            edge_classes["E_sparse"] += 1
        else:
            edge_classes["E_dense"] += 1

    # Component contributions over a sample of edges.
    rng = random.Random(7)
    sample = rng.sample(list(graph.edges()), min(300, graph.num_edges))
    component_rows = []
    for component, label in (
        (lca.sparse_component, "H_sparse (Lemma 4.5)"),
        (lca.tree_component, "H^I_dense (Lemma 4.6)"),
        (lca.connector_component, "H^B_dense (Lemma 4.11/4.14)"),
    ):
        kept = 0
        max_probes = 0
        for (u, v) in sample:
            outcome = component.query_with_stats(u, v)
            kept += int(outcome.in_spanner)
            max_probes = max(max_probes, outcome.probe_total)
        component_rows.append(
            {
                "component": label,
                "kept (of sample)": kept,
                "sample size": len(sample),
                "max probes / query": max_probes,
            }
        )

    class_rows = [
        {"edge class": label, "# input edges": count}
        for label, count in edge_classes.items()
    ]
    class_rows.append(
        {"edge class": "sparse vertices", "# input edges": len(sparse_vertices)}
    )
    print_section(
        "Table 3 — O(k²)-spanner edge categorization (k=2)",
        format_table(class_rows) + "\n\n" + format_table(component_rows),
    )

    assert edge_classes["E_sparse"] + edge_classes["E_dense"] == graph.num_edges

    u, v = sample[0]
    benchmark(lambda: lca.query(u, v))
    benchmark.extra_info["table"] = "Table 3"
