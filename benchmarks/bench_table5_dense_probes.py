"""Table 5 — probe complexity of the dense-side subroutines.

Table 5 of the paper lists the probes used by the dense-side subroutines:

* finding c(v) and π(v, c(v))                       — O(ΔL),
* testing whether an edge is a Voronoi-tree edge     — O(ΔL),
* computing the children of v in its Voronoi tree    — O(Δ²L),
* heavy/light classification (capped subtree size)   — O(Δ²L²),
* computing the entire cluster of v                  — O(Δ³L²),
* the full H_dense membership test                   — O(pΔ⁴L³ log n).

The benchmark measures each row on a bounded-degree graph with parameters
tuned so that the dense region is populated, and checks the measured numbers
against (generous constant multiples of) the bounds.
"""

from __future__ import annotations

import random

from repro import format_table
from repro.core.oracle import AdjacencyListOracle
from repro.core.probes import ProbeCounter
from repro.spannerk import KSquaredSpannerLCA, LocalView

from conftest import print_section, tuned_k2_params


def _fresh_view(graph, params, randomness):
    return LocalView(AdjacencyListOracle(graph, ProbeCounter()), params, randomness)


def test_table5_dense_subroutine_probes(benchmark, bounded_benchmark_graph):
    graph = bounded_benchmark_graph
    params = tuned_k2_params(graph.num_vertices, k=2)
    lca = KSquaredSpannerLCA(graph, seed=29, params=params, shared_cache=False)
    randomness = lca.randomness

    delta = graph.max_degree()
    budget = params.exploration_budget

    # Collect some dense vertices and dense-dense edges to measure on.
    scan_view = LocalView(AdjacencyListOracle(graph), params, randomness, cache={})
    dense_vertices = [v for v in graph.vertices() if scan_view.is_dense(v)][:40]
    dense_edges = []
    for (u, v) in graph.edges():
        if scan_view.is_dense(u) and scan_view.is_dense(v):
            dense_edges.append((u, v))
        if len(dense_edges) >= 40:
            break
    assert dense_vertices and dense_edges, "tune parameters: dense region empty"

    def measure(callable_per_item, items):
        worst = 0
        for item in items:
            view = _fresh_view(graph, params, randomness)
            callable_per_item(view, item)
            worst = max(worst, view.oracle.counter.total)
        return worst

    center_max = measure(lambda view, v: view.center(v), dense_vertices)
    tree_edge_max = measure(lambda view, e: view.is_tree_edge(*e), dense_edges)
    children_max = measure(lambda view, v: view.children(v), dense_vertices)
    heavy_max = measure(lambda view, v: view.is_heavy(v), dense_vertices)
    cluster_max = measure(lambda view, v: view.cluster_info(v), dense_vertices)

    full_max = 0
    rng = random.Random(11)
    for (u, v) in rng.sample(dense_edges, min(25, len(dense_edges))):
        outcome = lca.connector_component.query_with_stats(u, v)
        full_max = max(full_max, outcome.probe_total)

    rows = [
        {"subroutine": "find c(v) and π(v, c(v))", "paper bound": f"O(ΔL)={delta*budget}", "measured max": center_max},
        {"subroutine": "Voronoi-tree edge test", "paper bound": f"O(ΔL)={delta*budget}", "measured max": tree_edge_max},
        {"subroutine": "children of v in T(c(v))", "paper bound": f"O(Δ²L)={delta**2*budget}", "measured max": children_max},
        {"subroutine": "heavy/light test", "paper bound": f"O(Δ²L²)={delta**2*budget**2}", "measured max": heavy_max},
        {"subroutine": "compute v's entire cluster", "paper bound": f"O(Δ³L²)={delta**3*budget**2}", "measured max": cluster_max},
        {"subroutine": "full H^B_dense membership test", "paper bound": f"O(pΔ⁴L³ log n)", "measured max": full_max},
    ]
    print_section("Table 5 — H_dense subroutine probe complexity (k=2)", format_table(rows))

    assert center_max <= 4 * delta * budget + 20
    assert tree_edge_max <= 8 * delta * budget + 20
    assert children_max <= 8 * delta**2 * budget + 50
    assert heavy_max <= 8 * delta**2 * budget**2 + 50
    assert cluster_max <= 8 * delta**3 * budget**2 + 100
    # The full test is polynomially bounded; compare against the Table 5 form.
    import math

    bound = params.mark_probability * delta**4 * budget**3 * math.log(graph.num_vertices)
    assert full_max <= 40 * bound + 500

    vertex = dense_vertices[0]
    benchmark(lambda: _fresh_view(graph, params, randomness).cluster_info(vertex))
    benchmark.extra_info["table"] = "Table 5"
