"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables (or the empirical
counterpart of one of its theorems) and prints the rows with
``repro.analysis.format_table``; run with ``-s`` to see them, e.g.::

    pytest benchmarks/ --benchmark-only -s

Graph sizes are chosen so the whole suite runs in a few minutes on a laptop
while still being large enough for the asymptotic shapes (who wins, by what
factor, where the crossovers are) to be visible.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.spannerk import KSquaredParams


def print_section(title: str, body: str) -> None:
    """Print a titled block (visible with ``pytest -s``)."""
    line = "=" * max(20, len(title))
    print(f"\n{line}\n{title}\n{line}\n{body}\n")


@pytest.fixture(scope="session")
def dense_benchmark_graph():
    """A dense graph for the 3-spanner benchmarks (degrees well above √n)."""
    return graphs.gnp_graph(400, 0.10, seed=101)


@pytest.fixture(scope="session")
def parallel_benchmark_graph():
    """The dense fixture scaled up (~32k edges) for the executor benchmark:
    large enough that query compute dominates the process-pool scatter and
    fold-back overhead, so the measured speedup reflects the cores."""
    return graphs.gnp_graph(900, 0.08, seed=101)


@pytest.fixture(scope="session")
def clustered_benchmark_graph():
    """Medium-degree clustered graph: the 5-spanner's bucket/representative
    machinery is fully active and full materialization stays affordable."""
    return graphs.dense_cluster_graph(160, 16, inter_probability=0.03, seed=55)


@pytest.fixture(scope="session")
def skewed_benchmark_graph():
    """Degree-skewed graph populating all edge classes of Tables 1–2."""
    return graphs.planted_hub_graph(400, num_hubs=8, hub_degree=180, seed=33)


@pytest.fixture(scope="session")
def bounded_benchmark_graph():
    """Bounded-degree graph for the O(k²)-spanner benchmarks."""
    return graphs.bounded_degree_expanderish(600, d=6, seed=7)


def tuned_k2_params(n: int, k: int = 2) -> KSquaredParams:
    """O(k²) parameters that keep both regimes (sparse + dense) active at
    benchmark scale; the paper defaults degenerate below n ≈ 10⁴."""
    budget = max(4, round(n ** (1 / 3)))
    return KSquaredParams(
        num_vertices=n,
        stretch_parameter=k,
        exploration_budget=budget,
        center_probability=min(1.0, 3.0 / budget),
        mark_probability=min(1.0, 1.0 / budget),
        rank_quota=max(4, round(2 * n ** (1.0 / k))),
        independence=12,
    )
