"""Observability benchmark: tracing overhead and trace determinism.

Runs the online service (dense fixture, zipf workload) three ways — no
tracer at all, the disabled :data:`~repro.obs.NULL_TRACER`, and the full
plane (live :class:`~repro.obs.SpanTracer` + probe-attribution profiler) —
and writes everything to ``BENCH_obs.json`` at the repository root.

Shapes to check:

* **Disabled observability is free.**  The instrumentation hooks guard on
  ``tracer.enabled``, so serving with the null tracer must stay within
  :data:`MAX_TRACE_OVERHEAD` (default 5%) of the untraced throughput.
  This is the enforced floor — the zero-cost-when-disabled contract the
  service keeps for every deployment that never turns tracing on.
* **Live tracing cost is tracked, not hidden.**  The full-plane run's
  overhead is recorded in the JSON (typically a few percent: one span per
  batch plus per-replica probe attribution) so regressions are visible in
  the artifact history; it has no floor because its cost scales with span
  volume by design.
* **Traces are deterministic.**  Two full-plane runs on the deterministic
  tick clock must export byte-identical JSONL span streams — the same
  property the CI obs-smoke job asserts end-to-end through the CLI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import format_table
from repro.core.registry import create
from repro.obs import NULL_TRACER, ProbeProfiler, SpanTracer, trace_jsonl
from repro.reports import TickClock
from repro.service import ServiceConfig, ServiceEngine, make_workload

from bench_common import payload_header
from conftest import print_section

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: Acceptance ceiling for the null-tracer (observability disabled) overhead
#: on the zipf service run.  The environment override exists for noisy
#: shared CI runners, not for local use.
MAX_TRACE_OVERHEAD = float(os.environ.get("BENCH_MAX_TRACE_OVERHEAD", "0.05"))

NUM_REQUESTS = 8000
NUM_SHARDS = 4
BATCH_SIZE = 64
WORKLOAD_SEED = 3

#: Timing repetitions (best-of, to shrug off scheduler noise).
REPEATS = 3


def _serve(graph, tracer=None, profiler=None, clock=None):
    engine = ServiceEngine(
        graph,
        lambda g: create("spanner3", g, seed=5, hitting_constant=1.0),
        ServiceConfig(num_shards=NUM_SHARDS, batch_size=BATCH_SIZE),
    )
    workload = make_workload(
        "zipf", graph, num_requests=NUM_REQUESTS, seed=WORKLOAD_SEED
    )
    if clock is not None:
        return engine.run(workload, clock=clock, tracer=tracer, profiler=profiler)
    return engine.run(workload, tracer=tracer, profiler=profiler)


def _best_rps(graph, make_tracer, make_profiler):
    """Best wall-clock throughput over REPEATS runs (fresh engine each)."""
    best = 0.0
    report = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        candidate = _serve(graph, tracer=make_tracer(), profiler=make_profiler())
        elapsed = time.perf_counter() - started
        rps = candidate.served / max(elapsed, 1e-9)
        if rps > best:
            best, report = rps, candidate
    return best, report


def test_tracing_overhead_and_determinism(dense_benchmark_graph):
    graph = dense_benchmark_graph.to_backend("csr")

    modes = {
        "plain": (lambda: None, lambda: None),
        "null_tracer": (lambda: NULL_TRACER, lambda: None),
        "traced": (lambda: SpanTracer(), lambda: ProbeProfiler()),
    }
    rps = {}
    reports = {}
    for label, (make_tracer, make_profiler) in modes.items():
        rps[label], reports[label] = _best_rps(graph, make_tracer, make_profiler)

    null_overhead = 1.0 - rps["null_tracer"] / max(rps["plain"], 1e-9)
    traced_overhead = 1.0 - rps["traced"] / max(rps["plain"], 1e-9)

    # ---- observation never changes the answers --------------------------
    for label in ("null_tracer", "traced"):
        assert reports[label].served == reports["plain"].served
        assert reports[label].probe_stats.total == reports["plain"].probe_stats.total, (
            f"{label}: probe accounting diverged from the unobserved run"
        )

    # ---- determinism: two tick-clock runs export identical traces -------
    exports = []
    spans = 0
    for _ in range(2):
        tracer = SpanTracer()
        _serve(graph, tracer=tracer, profiler=ProbeProfiler(), clock=TickClock())
        exports.append(trace_jsonl(tracer))
        spans = len(tracer.finished())
    assert exports[0] == exports[1], (
        "two tick-clock service runs exported different trace bytes"
    )

    rows = [
        {
            "mode": label,
            "requests/s": round(rps[label]),
            "overhead vs plain": (
                "-" if label == "plain"
                else f"{(1.0 - rps[label] / rps['plain']):+.1%}"
            ),
        }
        for label in ("plain", "null_tracer", "traced")
    ]
    print_section(
        "Observability plane: tracing overhead and trace determinism",
        format_table(rows)
        + f"\n\nnull-tracer ceiling: {MAX_TRACE_OVERHEAD:.0%}"
        + f"\ndeterminism: {spans} spans, byte-identical across two runs",
    )

    payload = {
        **payload_header("bench_obs"),
        "max_trace_overhead_allowed": MAX_TRACE_OVERHEAD,
        "requests": NUM_REQUESTS,
        "shards": NUM_SHARDS,
        "batch_size": BATCH_SIZE,
        "throughput_rps": {label: round(value, 1) for label, value in rps.items()},
        "null_tracer_overhead": round(null_overhead, 4),
        "traced_overhead": round(traced_overhead, 4),
        "deterministic_trace_spans": spans,
        "trace_bytes_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert null_overhead <= MAX_TRACE_OVERHEAD, (
        f"disabled observability must cost at most {MAX_TRACE_OVERHEAD:.0%} "
        f"of untraced throughput, measured {null_overhead:+.1%}"
    )
