"""Fault-tolerance benchmark: availability under a crash storm.

Runs the online service on the dense fixture through a seeded crash storm
(``FaultPlan.generate``) three times — fault-free, storm with replication
off, storm with per-shard replica sets — on the deterministic tick clock,
and writes everything to ``BENCH_faults.json`` at the repository root.

Shapes to check:

* **Replication rescues availability.**  With ``replication=2`` the same
  storm that degrades the unreplicated pool is absorbed by failover:
  availability (non-degraded answers per read offered) must stay at or
  above :data:`MIN_AVAILABILITY` (default 99%).  The unreplicated run is
  the *documented degraded baseline* — its availability is recorded in the
  JSON so the gap is visible, and it must sit strictly below the
  replicated run's.
* **Failover changes no answer.**  The replicated storm run's request log
  (answers and per-request probe totals) is bit-identical to the
  fault-free run — LCA purity plus cold-schedule probe accounting make
  promoted replicas indistinguishable from the primaries they replace.
* **The latency tail pays, correctness doesn't.**  Retries, backoff and
  slow batches show up in the storm run's virtual-time p99; the JSON
  records p99 for all three runs so the tail cost of the fault plane is
  tracked next to the availability it buys.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import format_table
from repro.core.registry import create
from repro.faults import FaultPlan
from repro.reports import TickClock
from repro.service import ServiceConfig, ServiceEngine, make_workload

from bench_common import payload_header
from conftest import print_section

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_faults.json"

#: Acceptance floor for served (non-degraded) availability under the crash
#: storm with replication on.  The unreplicated baseline on the same storm
#: lands well below it (typically 0.90-0.96); override for experiments.
MIN_AVAILABILITY = float(os.environ.get("BENCH_MIN_AVAILABILITY", "0.99"))

NUM_REQUESTS = 8000
NUM_SHARDS = 4
BATCH_SIZE = 32
WORKLOAD_SEED = 3

#: The storm: seeded replica crashes across the whole run.  Generated with
#: ``replication=2`` so victims span both replica slots; the unreplicated
#: run folds every victim onto its only replica (crash == shard loss).
STORM = dict(
    seed=29,
    num_shards=NUM_SHARDS,
    replication=2,
    horizon=220,
    crashes=24,
    duration=4,
)


def _run(graph, replication, fault_plan, record=False):
    config = ServiceConfig(
        num_shards=NUM_SHARDS,
        batch_size=BATCH_SIZE,
        replication=replication,
        fault_plan=fault_plan,
        record=record,
    )
    engine = ServiceEngine(
        graph,
        lambda g: create("spanner3", g, seed=5, hitting_constant=1.0),
        config,
    )
    workload = make_workload(
        "uniform", graph, num_requests=NUM_REQUESTS, seed=WORKLOAD_SEED
    )
    report = engine.run(workload, clock=TickClock())
    return engine, report


def test_availability_under_crash_storm(dense_benchmark_graph):
    graph = dense_benchmark_graph.to_backend("csr")
    storm = FaultPlan.generate(**STORM)

    fault_free_engine, fault_free = _run(graph, 2, None, record=True)
    _, degraded = _run(graph, 1, storm)
    storm_engine, replicated = _run(graph, 2, storm, record=True)

    # ---- failover is answer- and probe-invisible -------------------------
    # Requests flagged degraded (a window where a crash overlapped on both
    # replicas of one shard) are excluded: they were *not* served by an
    # oracle, by design.  Every request that was served must match the
    # fault-free run bit for bit.
    baseline_by_seq = {r.seq: r for r in fault_free_engine.records}
    compared = 0
    for record in storm_engine.records:
        if record.degraded:
            continue
        baseline = baseline_by_seq[record.seq]
        assert (record.u, record.v) == (baseline.u, baseline.v)
        assert record.in_spanner == baseline.in_spanner, (
            f"failover changed the answer of request {record.seq}"
        )
        assert record.probe_total == baseline.probe_total, (
            f"failover changed the probe total of request {record.seq}"
        )
        compared += 1
    assert compared >= MIN_AVAILABILITY * len(storm_engine.records)

    # ---- availability ----------------------------------------------------
    assert fault_free.availability == 1.0
    assert replicated.faults["failovers"] > 0, "the storm never hit a primary"
    assert degraded.faults["degraded_answers"] > 0, (
        "the storm was too gentle to degrade the unreplicated baseline"
    )
    assert degraded.availability < replicated.availability

    rows = []
    for label, report in (
        ("fault-free", fault_free),
        ("storm, replication=1", degraded),
        ("storm, replication=2", replicated),
    ):
        latency = report.latency.as_dict()
        rows.append(
            {
                "run": label,
                "served": report.served,
                "degraded": report.faults.get("degraded_answers", 0),
                "failovers": report.faults.get("failovers", 0),
                "retries": report.faults.get("retries", 0),
                "availability": round(report.availability, 4),
                "p99 ms": latency["p99_ms"],
            }
        )

    print_section(
        "Fault tolerance: availability and tail latency under a crash storm",
        format_table(rows)
        + f"\n\nacceptance floor (replication=2): {MIN_AVAILABILITY}",
    )

    payload = {
        **payload_header("bench_faults"),
        "min_availability_required": MIN_AVAILABILITY,
        "storm": STORM,
        "availability": {
            "fault_free": round(fault_free.availability, 4),
            "storm_replication_1": round(degraded.availability, 4),
            "storm_replication_2": round(replicated.availability, 4),
        },
        "runs": {
            "fault_free": fault_free.as_dict(),
            "storm_replication_1": degraded.as_dict(),
            "storm_replication_2": replicated.as_dict(),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert replicated.availability >= MIN_AVAILABILITY, (
        f"replicated availability under the crash storm must stay >= "
        f"{MIN_AVAILABILITY}, measured {replicated.availability:.4f} "
        f"(unreplicated baseline: {degraded.availability:.4f})"
    )
