"""Theorem 1.3 — the Ω(min{√n, n²/m}) probe lower bound, empirically.

The theorem's argument: with fewer than ~min{√n, n/d} probes the D⁺ and D⁻
families are indistinguishable, so an LCA cannot decide whether the
designated edge is essential.  The benchmark measures the advantage of the
natural probe-limited distinguisher as the probe budget crosses the
threshold: the advantage is ≈ 0 far below the threshold and → 1 far above
it, reproducing the shape of the bound.
"""

from __future__ import annotations

from repro import format_table
from repro.lowerbound import advantage_curve, run_distinguishing_experiment

from conftest import print_section

N, D = 202, 3  # n ≡ 2 (mod 4), odd d, as in the paper's construction
TRIALS = 10


def test_lower_bound_advantage_curve(benchmark):
    threshold = min(N ** 0.5, N / D)
    budgets = [2, 8, max(3, int(threshold // 4)), int(threshold), int(8 * threshold), 50_000]
    curve = advantage_curve(N, D, probe_budgets=budgets, trials=TRIALS, seed=3)
    rows = [
        {
            "probe budget": point.probe_budget,
            "budget / threshold": round(point.probe_budget / point.theory_threshold, 2),
            "success rate": round(point.success_rate, 2),
            "advantage": round(point.advantage, 2),
        }
        for point in curve
    ]
    print_section(
        f"Theorem 1.3 — distinguishing advantage vs probe budget "
        f"(n={N}, d={D}, threshold≈{threshold:.0f})",
        format_table(rows),
    )

    # Shape: clueless far below the threshold, (near-)perfect far above it.
    assert curve[0].advantage <= 0.25
    assert curve[-1].advantage >= 0.75
    assert curve[0].advantage <= curve[-1].advantage

    benchmark(
        lambda: run_distinguishing_experiment(
            N, D, probe_budget=int(threshold), trials=2, seed=99
        )
    )
    benchmark.extra_info["theorem"] = "1.3"
