"""Scaling of the O(k²)-spanner LCA (Theorem 1.2).

Targets: Õ(n^{1+1/k}) edges and probe complexity polynomial in Δ and n^{2/3}.
The sweep runs on bounded-degree graphs (the construction's habitat: it is
sublinear for Δ = O(n^{1/12-ε})), estimating spanner size from the query
YES-rate and measuring per-query probes without any caching.  A second
experiment varies k at fixed n and checks that larger k yields (weakly)
sparser spanners — the size/stretch trade-off the theorem describes.
"""

from __future__ import annotations

import random

from repro import format_table, graphs
from repro.analysis import exponent_row, run_sweep
from repro.spannerk import KSquaredSpannerLCA

from conftest import print_section, tuned_k2_params

SIZES = [200, 400, 800]
DEGREE = 6


def _factory(k):
    def build(graph, seed):
        return KSquaredSpannerLCA(
            graph,
            seed=seed,
            params=tuned_k2_params(graph.num_vertices, k=k),
            shared_cache=False,
        )

    return build


def test_scaling_k2(benchmark):
    sweep = run_sweep(
        "O(k^2)-spanner LCA (k=2)",
        lca_factory=_factory(2),
        graph_factory=lambda n, s: graphs.bounded_degree_expanderish(n, d=DEGREE, seed=s),
        sizes=SIZES,
        seed=41,
        materialize=False,
        probe_queries=40,
    )
    summary = exponent_row(sweep, target_size_exponent=1.5, target_probe_exponent=2 / 3)
    print_section(
        "Scaling SK — O(k²)-spanner size / probe growth (k=2, Δ≈6)",
        format_table(sweep.rows()) + "\n\n" + format_table([summary]),
    )
    size_exponent = sweep.size_exponent()
    assert size_exponent is not None
    # On bounded-degree graphs m = Θ(n); the spanner grows roughly linearly
    # and must certainly not grow super-quadratically.
    assert size_exponent < 1.6

    graph = graphs.bounded_degree_expanderish(SIZES[-1], d=DEGREE, seed=43)
    lca = _factory(2)(graph, 41)
    u, v = next(iter(graph.edges()))
    benchmark(lambda: lca.query(u, v))
    benchmark.extra_info["size_exponent"] = size_exponent


def test_k_tradeoff_at_fixed_size(benchmark):
    """Larger k → (weakly) fewer edges kept, at higher stretch budget."""
    graph = graphs.bounded_degree_expanderish(400, d=DEGREE, seed=47)
    rng = random.Random(3)
    sample = rng.sample(list(graph.edges()), 150)
    rows = []
    estimates = {}
    for k in (1, 2, 3):
        lca = KSquaredSpannerLCA(
            graph, seed=9, params=tuned_k2_params(graph.num_vertices, k=k), shared_cache=True
        )
        kept = sum(1 for (u, v) in sample if lca.query(u, v))
        estimate = kept / len(sample) * graph.num_edges
        estimates[k] = estimate
        rows.append(
            {
                "k": k,
                "stretch budget": lca.stretch_bound(),
                "estimated |H|": int(estimate),
                "target |H|": f"~O(n^(1+1/{k}))",
            }
        )
    print_section("O(k²)-spanner — size vs stretch trade-off", format_table(rows))
    assert estimates[3] <= estimates[1] + 0.05 * graph.num_edges

    lca = KSquaredSpannerLCA(
        graph, seed=9, params=tuned_k2_params(graph.num_vertices, k=2), shared_cache=True
    )
    u, v = sample[0]
    benchmark(lambda: lca.query(u, v))
