"""Table 4 — probe complexity of the sparse-side subroutines.

Table 4 of the paper lists the probe complexity of the subroutines used to
compute H_sparse:

* determining whether a vertex is a center               — no probes,
* computing D^k_L(v) / the sparse-dense test              — O(ΔL),
* gathering Γ^k(u) and Γ^k(v) for a sparse edge           — O(Δ²L),
* the full H_sparse membership test                       — O(Δ²L²).

This benchmark measures each row on a bounded-degree graph and checks that
the measured numbers respect (a small constant multiple of) those bounds.
"""

from __future__ import annotations

import random

from repro import format_table
from repro.core.oracle import AdjacencyListOracle
from repro.core.probes import ProbeCounter
from repro.spannerk import KSquaredRandomness, KSquaredSpannerLCA, LocalView

from conftest import print_section, tuned_k2_params


def test_table4_sparse_subroutine_probes(benchmark, bounded_benchmark_graph):
    graph = bounded_benchmark_graph
    params = tuned_k2_params(graph.num_vertices, k=2)
    lca = KSquaredSpannerLCA(graph, seed=21, params=params, shared_cache=False)
    randomness: KSquaredRandomness = lca.randomness

    delta = graph.max_degree()
    budget = params.exploration_budget
    rng = random.Random(5)
    vertices = rng.sample(graph.vertices(), 60)

    # Row 1: center membership — no probes at all.
    counter = ProbeCounter()
    oracle = AdjacencyListOracle(graph, counter)
    for v in vertices:
        randomness.is_center(v)
    center_probes = counter.total

    # Row 2: D^k_L computation / sparse-dense test.
    explore_max = 0
    for v in vertices:
        counter = ProbeCounter()
        view = LocalView(AdjacencyListOracle(graph, counter), params, randomness)
        view.is_sparse(v)
        explore_max = max(explore_max, counter.total)

    # Row 3: gathering the k-ball around a (preferably sparse) edge.
    gather_max = 0
    sparse_edges = []
    probe_view = LocalView(AdjacencyListOracle(graph), params, randomness, cache={})
    for (u, v) in graph.edges():
        if probe_view.is_sparse(u) or probe_view.is_sparse(v):
            sparse_edges.append((u, v))
        if len(sparse_edges) >= 40:
            break
    for (u, v) in sparse_edges:
        counter = ProbeCounter()
        oracle = AdjacencyListOracle(graph, counter)
        lca.sparse_component._gather_ball(oracle, [u, v], radius=params.stretch_parameter)
        gather_max = max(gather_max, counter.total)

    # Row 4: the full H_sparse membership test.
    full_max = 0
    for (u, v) in sparse_edges:
        outcome = lca.sparse_component.query_with_stats(u, v)
        full_max = max(full_max, outcome.probe_total)

    rows = [
        {
            "subroutine": "is v a center?",
            "paper bound": "0 probes",
            "measured max": center_probes,
        },
        {
            "subroutine": "compute D^k_L(v) / sparse-dense test",
            "paper bound": f"O(ΔL) = O({delta * budget})",
            "measured max": explore_max,
        },
        {
            "subroutine": "gather Γ^k(u) ∪ Γ^k(v)",
            "paper bound": f"O(Δ²L) = O({delta**2 * budget})",
            "measured max": gather_max,
        },
        {
            "subroutine": "full H_sparse membership test",
            "paper bound": f"O(Δ²L²) = O({delta**2 * budget**2})",
            "measured max": full_max,
        },
    ]
    print_section("Table 4 — H_sparse subroutine probe complexity (k=2)", format_table(rows))

    assert center_probes == 0
    assert explore_max <= 4 * delta * budget + 10
    assert gather_max <= 8 * delta**2 * budget + 50
    assert full_max <= 20 * delta**2 * budget**2 + 100

    sample_vertex = vertices[0]
    benchmark(
        lambda: LocalView(
            AdjacencyListOracle(graph), params, randomness
        ).is_sparse(sample_vertex)
    )
    benchmark.extra_info["table"] = "Table 4"
