"""Million-node scale benchmark: streaming build, mmap load, bounded memo.

Sweeps ``n`` over {10^4, 10^5, 10^6} (override with ``BENCH_SCALE_SIZES``)
at a fixed expected degree and measures, per size:

* **streaming build** — wall time and tracemalloc peak of
  ``build_stream_family("gnp-stream", ...)``, which goes straight into flat
  CSR arrays with no Python edge list;
* **legacy build** (only at n ≤ 10^5, where it is affordable) — the same
  graph through ``gnp_graph().to_backend("csr")``, asserted bit-identical
  to the streamed arrays, and the headline **peak-memory ratio**
  legacy/stream, with an acceptance floor (``BENCH_MIN_STREAM_RSS_RATIO``,
  relaxed to 1 on CI smoke runs);
* **snapshot save / mmap load** — the load's tracemalloc peak is O(n)
  (the id → position map), never O(m): the adjacency pages stay on disk
  until the kernel faults them in;
* **bounded-memo queries** — spanner3 probe totals over a deterministic
  edge sample under ``memo_cap=512``, asserted equal to the unbounded
  cache's totals at the sizes where both run, with the resident entry
  count (flat in n) recorded next to them.

Results go to ``BENCH_scale.json`` at the repository root; ``ru_maxrss``
is recorded per phase so the whole-process RSS curve is inspectable too.
"""

from __future__ import annotations

import bisect
import json
import os
import resource
import time
import tracemalloc
from pathlib import Path

from repro import format_table, graphs
from repro.core.registry import create
from repro.scale import build_stream_family, load_csr_snapshot, save_csr_snapshot

from bench_common import payload_header
from conftest import print_section

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_scale.json"

#: Swept sizes.  The default covers four orders of magnitude; CI smoke runs
#: override with two small sizes so the job finishes in seconds.
SIZES = [int(s) for s in os.environ.get("BENCH_SCALE_SIZES", "10000,100000,1000000").split(",")]

#: Expected degree of the swept G(n, p) instances (p = DEGREE_TARGET / n).
DEGREE_TARGET = 6.0

#: Largest n at which the legacy in-memory builder is also run (its Python
#: edge list and per-edge tuples are exactly the cost being measured).
LEGACY_MAX_N = 100_000

#: Acceptance floor for peak-build-memory legacy/stream at LEGACY_MAX_N
#: scale.  The streamed path must hold at least this factor; measured
#: locally it is >5x.  CI smoke runs (tiny n, fixed costs dominate) relax
#: it via the environment.
MIN_STREAM_RSS_RATIO = float(os.environ.get("BENCH_MIN_STREAM_RSS_RATIO", "2.0"))

SEED = 101
MEMO_CAP = 512
NUM_QUERIES = int(os.environ.get("BENCH_SCALE_QUERIES", "16"))


def _traced(fn):
    """(wall seconds, tracemalloc peak bytes, result) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak, result


def _maxrss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _sample_edges(graph, count):
    """A deterministic edge sample straight off the CSR arrays.

    Entries are picked at fixed strides through ``indices`` and mapped back
    to their source row by bisecting ``indptr`` — no edge list, no per-edge
    tuples beyond the sample itself.
    """
    indptr = graph._indptr
    indices = graph._indices
    nnz = len(indices)
    if not nnz:
        return []
    edges = []
    for k in range(count):
        entry = (k * nnz) // count
        u = bisect.bisect_right(indptr, entry) - 1
        edges.append((u, indices[entry]))
    return edges


def _mb(num_bytes):
    return round(num_bytes / 1e6, 2)


def test_scale_streaming_mmap_bounded_memo(tmp_path):
    rows = []
    results = []
    for n in SIZES:
        p = min(1.0, DEGREE_TARGET / n)
        entry = {"n": n, "p": p}

        build_s, build_peak, streamed = _traced(
            lambda: build_stream_family("gnp-stream", n, density=p, seed=SEED)
        )
        entry["m"] = streamed.num_edges
        entry["stream_build_s"] = round(build_s, 3)
        entry["stream_build_peak_bytes"] = build_peak
        entry["maxrss_kb_after_stream"] = _maxrss_kb()

        ratio = None
        if n <= LEGACY_MAX_N:
            legacy_s, legacy_peak, legacy = _traced(
                lambda: graphs.gnp_graph(n, p, seed=SEED).to_backend("csr")
            )
            legacy.compact()
            assert list(legacy._indptr) == list(streamed._indptr)
            assert list(legacy._indices) == list(streamed._indices)
            ratio = legacy_peak / build_peak
            entry["legacy_build_s"] = round(legacy_s, 3)
            entry["legacy_build_peak_bytes"] = legacy_peak
            entry["stream_rss_ratio"] = round(ratio, 2)
            del legacy

        path = tmp_path / f"scale-{n}.csr"
        save_s, _, _ = _traced(lambda: save_csr_snapshot(streamed, path))
        entry["snapshot_bytes"] = path.stat().st_size
        entry["snapshot_save_s"] = round(save_s, 3)
        del streamed

        load_s, load_peak, mapped = _traced(lambda: load_csr_snapshot(path))
        entry["mmap_load_s"] = round(load_s, 3)
        entry["mmap_load_peak_bytes"] = load_peak

        edges = _sample_edges(mapped, NUM_QUERIES)
        bounded_lca = create("spanner3", mapped, seed=7).set_memo_cap(MEMO_CAP)
        query_s, _, batch = _traced(lambda: bounded_lca.query_batch(edges))
        cache = bounded_lca.ensure_cached_oracle().cache
        entry["queries"] = len(edges)
        entry["query_s"] = round(query_s, 3)
        entry["probe_total"] = sum(batch.probe_totals)
        entry["probe_max"] = max(batch.probe_totals, default=0)
        entry["memo_cap"] = MEMO_CAP
        entry["memo_resident"] = cache.resident_entries
        assert cache.resident_entries <= MEMO_CAP

        if n <= LEGACY_MAX_N:
            unbounded = create("spanner3", mapped, seed=7)
            reference = unbounded.query_batch(edges)
            assert batch.answers == reference.answers
            assert batch.probe_totals == reference.probe_totals
        mapped.detach()
        entry["maxrss_kb"] = _maxrss_kb()
        results.append(entry)

        rows.append(
            {
                "n": n,
                "m": entry["m"],
                "stream s": entry["stream_build_s"],
                "stream peak MB": _mb(build_peak),
                "legacy/stream": "-" if ratio is None else round(ratio, 2),
                "load peak MB": _mb(load_peak),
                "probes/query": round(entry["probe_total"] / max(1, len(edges)), 1),
                "resident": entry["memo_resident"],
            }
        )

    floor_checked = any(n <= LEGACY_MAX_N for n in SIZES)
    print_section(
        "Scale plane: streaming build, mmap load, bounded-memo probes vs n",
        format_table(rows)
        + f"\n\npeak-memory floor legacy/stream >= {MIN_STREAM_RSS_RATIO}"
        + ("" if floor_checked else "  [no legacy-sized n swept: floor not checked]"),
    )

    payload = {
        **payload_header("bench_scale", floor_enforced=floor_checked),
        "degree_target": DEGREE_TARGET,
        "seed": SEED,
        "memo_cap": MEMO_CAP,
        "min_stream_rss_ratio_required": MIN_STREAM_RSS_RATIO,
        "sizes": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    for entry in results:
        ratio = entry.get("stream_rss_ratio")
        if ratio is not None:
            assert ratio >= MIN_STREAM_RSS_RATIO, (
                f"streaming build must hold a >={MIN_STREAM_RSS_RATIO}x peak-memory "
                f"advantage over the legacy edge-list build at n={entry['n']}, "
                f"measured {ratio:.2f}x"
            )
