"""Table 1 — summary of LCA spanner results vs. prior work and baselines.

The paper's Table 1 lists, for each construction, the graph family, the
number of edges, the stretch and the probe complexity.  This benchmark
reproduces the measurable columns on a common input:

* the paper's three constructions (3-spanner, 5-spanner, O(k²)-spanner),
* the prior-work style sparse-spanning LCA (stretch unanalyzed),
* the global Baswana–Sen and greedy spanners (not LCAs; size yardsticks).

The "shape" to check: the 3-/5-spanner LCAs keep multiplicatively fewer edges
than the input on dense graphs while answering queries with far fewer probes
than reading a neighborhood, and their measured stretch never exceeds 3 / 5.
"""

from __future__ import annotations

import pytest

from repro import create_lca, evaluate_lca, format_table
from repro.analysis import evaluate_materialized, measure_stretch
from repro.baselines import baswana_sen_spanner, greedy_spanner
from repro.core.lca import MaterializedSpanner
from repro.spannerk import KSquaredSpannerLCA

from conftest import print_section, tuned_k2_params


def _lca_row(name, lca, graph, stretch_limit):
    report = evaluate_lca(lca, stretch_limit=stretch_limit)
    return {
        "algorithm": name,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "|H| measured": report.num_spanner_edges,
        "stretch measured": report.stretch.max_stretch,
        "stretch bound": report.stretch_bound,
        "max probes / query": report.probe_max,
        "mean probes / query": round(report.probe_mean, 1),
    }


def test_table1_summary(
    benchmark, dense_benchmark_graph, clustered_benchmark_graph, bounded_benchmark_graph
):
    graph = dense_benchmark_graph
    rows = []

    lca3 = create_lca("spanner3", graph, seed=5, hitting_constant=1.0)
    rows.append(_lca_row("3-spanner LCA (Thm 1.1, r=2)", lca3, graph, stretch_limit=4))

    # The 5-spanner is materialized on the medium-degree clustered workload,
    # where its bucket/representative machinery (rather than E_low) does the
    # work and full materialization stays affordable.
    clustered = clustered_benchmark_graph
    lca5 = create_lca("spanner5", clustered, seed=5, hitting_constant=1.0)
    rows.append(_lca_row("5-spanner LCA (Thm 3.4)", lca5, clustered, stretch_limit=6))

    sparse_spanning = create_lca("sparse-spanning", graph, seed=5, radius=2)
    rows.append(
        _lca_row("sparse-spanning LCA (prior work style)", sparse_spanning, graph, 40)
    )

    # O(k²) LCA runs on its natural bounded-degree habitat.
    bounded = bounded_benchmark_graph
    k2 = KSquaredSpannerLCA(
        bounded, seed=5, params=tuned_k2_params(bounded.num_vertices, k=2), shared_cache=True
    )
    k2_report = evaluate_lca(k2, stretch_limit=k2.stretch_bound() + 1)
    rows.append(
        {
            "algorithm": "O(k^2)-spanner LCA (Thm 1.2, k=2)",
            "n": bounded.num_vertices,
            "m": bounded.num_edges,
            "|H| measured": k2_report.num_spanner_edges,
            "stretch measured": k2_report.stretch.max_stretch,
            "stretch bound": k2_report.stretch_bound,
            "max probes / query": k2_report.probe_max,
            "mean probes / query": round(k2_report.probe_mean, 1),
        }
    )

    # Global baselines (read the whole graph; no probe column).
    for label, edges, bound in (
        ("Baswana-Sen global (k=2)", baswana_sen_spanner(graph, 2, seed=5), 3),
        ("Greedy global (k=2)", greedy_spanner(graph, 2), 3),
    ):
        stretch = measure_stretch(graph, edges, limit=bound + 1)
        rows.append(
            {
                "algorithm": label,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "|H| measured": len(edges),
                "stretch measured": stretch.max_stretch,
                "stretch bound": bound,
                "max probes / query": None,
                "mean probes / query": None,
            }
        )

    print_section("Table 1 — size / stretch / probe summary", format_table(rows))

    # Shape checks: the paper's constructions respect their stretch bounds and
    # sparsify the dense input.
    assert rows[0]["stretch measured"] <= 3
    assert rows[1]["stretch measured"] <= 5
    assert rows[0]["|H| measured"] < graph.num_edges
    assert rows[1]["|H| measured"] <= clustered.num_edges

    # Benchmark: one 3-spanner query on the dense graph.
    u, v = next(iter(graph.edges()))
    benchmark(lambda: lca3.query(u, v))
    benchmark.extra_info["table"] = "Table 1"
    benchmark.extra_info["rows"] = len(rows)
