"""Ablation — Idea I (multiple centers) and Idea II (neighborhood blocks).

DESIGN.md calls out two design choices of the 3-spanner LCA whose effect the
paper argues only analytically:

* **Idea I** — multiple centers make the cluster-membership test a single
  ``Adjacency`` probe; the naïve single-center construction needs a Θ(√n)
  prefix scan per test.  The ablation compares the per-query probes of the
  real 3-spanner LCA against the naïve variant on the same dense graph.
* **Idea II** — super-high-degree vertices are handled block by block; the
  ablation compares the probes of the block rule against a hypothetical full
  scan (measured as the block rule with block size = n, i.e. a single block).
"""

from __future__ import annotations

import random

from repro import format_table, graphs
from repro.core.seed import Seed
from repro.spanner3 import SuperBlockComponent, ThreeSpannerLCA
from repro.spanner3.ablation import NaiveSingleCenterLCA
from repro.spanner3.centers import PrefixCenterSystem

from conftest import print_section


def test_idea1_multiple_centers_vs_naive(benchmark, dense_benchmark_graph):
    graph = dense_benchmark_graph
    smart = ThreeSpannerLCA(graph, seed=3, hitting_constant=1.0)
    naive = NaiveSingleCenterLCA(graph, seed=3, hitting_constant=1.0)

    rng = random.Random(9)
    sample = rng.sample(list(graph.edges()), 120)
    for (u, v) in sample:
        smart.query(u, v)
        naive.query(u, v)

    rows = [
        {
            "variant": "Idea I: multiple centers (paper)",
            "mean probes/query": round(smart.probe_stats.mean, 1),
            "max probes/query": smart.probe_stats.max,
        },
        {
            "variant": "ablation: naive single center",
            "mean probes/query": round(naive.probe_stats.mean, 1),
            "max probes/query": naive.probe_stats.max,
        },
    ]
    print_section("Ablation — Idea I (cluster-membership in one probe)", format_table(rows))

    # The naive variant pays a multiplicative prefix-scan factor per
    # membership test; it must be clearly more expensive on dense inputs.
    assert naive.probe_stats.mean > 1.5 * smart.probe_stats.mean

    u, v = sample[0]
    benchmark(lambda: smart.query(u, v))
    benchmark.extra_info["ablation"] = "idea-1"


def test_idea2_blocks_vs_full_scan(benchmark, skewed_benchmark_graph):
    graph = skewed_benchmark_graph
    seed = Seed.of(11)
    block_size = 40  # stand-in for the n^{3/4} block size at this scale
    centers = PrefixCenterSystem(
        seed=seed.derive("ablation/super-centers"),
        probability=0.1,
        prefix=block_size,
        independence=10,
    )
    blocked = SuperBlockComponent(graph, seed, threshold=block_size, centers=centers)
    full_scan = SuperBlockComponent(
        graph, seed, threshold=graph.num_vertices, centers=centers
    )

    # Query edges incident to the hubs: these are the ones whose neighbor
    # lists are long enough that block locality matters.
    hub_edges = [
        (u, v)
        for (u, v) in graph.edges()
        if max(graph.degree(u), graph.degree(v)) > 3 * block_size
    ]
    rng = random.Random(5)
    sample = rng.sample(hub_edges, min(80, len(hub_edges)))
    for (u, v) in sample:
        blocked.query(u, v)
        full_scan.query(u, v)

    rows = [
        {
            "variant": f"Idea II: blocks of size {block_size} (paper)",
            "mean probes/query": round(blocked.probe_stats.mean, 1),
            "max probes/query": blocked.probe_stats.max,
        },
        {
            "variant": "ablation: scan the whole neighbor list",
            "mean probes/query": round(full_scan.probe_stats.mean, 1),
            "max probes/query": full_scan.probe_stats.max,
        },
    ]
    print_section("Ablation — Idea II (neighborhood partitioning)", format_table(rows))

    assert blocked.probe_stats.max < full_scan.probe_stats.max
    assert blocked.probe_stats.mean <= full_scan.probe_stats.mean

    u, v = sample[0]
    benchmark(lambda: blocked.query(u, v))
    benchmark.extra_info["ablation"] = "idea-2"
