"""Global baselines (Baswana–Sen, greedy) — the size/stretch yardsticks.

These are the non-local reference points of Table 1's "who wins" comparison:
the greedy spanner achieves the folklore O(n^{1+1/k}) size bound with the
best constants, Baswana–Sen matches it up to a factor k.  The benchmark
records their sizes across k and graph sizes so the LCA results can be read
against them, and times a full Baswana–Sen construction.
"""

from __future__ import annotations

from repro import format_table, graphs
from repro.analysis import measure_stretch
from repro.baselines import (
    baswana_sen_spanner,
    expected_size_bound,
    greedy_size_bound,
    greedy_spanner,
)

from conftest import print_section


def test_baseline_sizes_across_k(benchmark):
    graph = graphs.gnp_graph(300, 0.15, seed=61)
    rows = []
    for k in (2, 3, 4):
        bs = baswana_sen_spanner(graph, k, seed=5)
        greedy = greedy_spanner(graph, k)
        bs_stretch = measure_stretch(graph, bs, limit=2 * k).max_stretch
        greedy_stretch = measure_stretch(graph, greedy, limit=2 * k).max_stretch
        rows.append(
            {
                "k": k,
                "m": graph.num_edges,
                "|H| Baswana-Sen": len(bs),
                "|H| greedy": len(greedy),
                "bound k*n^(1+1/k)": int(expected_size_bound(graph.num_vertices, k)),
                "bound n^(1+1/k)": int(greedy_size_bound(graph.num_vertices, k)),
                "stretch BS": bs_stretch,
                "stretch greedy": greedy_stretch,
            }
        )
    print_section("Baselines — global spanner sizes across k", format_table(rows))

    for row in rows:
        k = row["k"]
        assert row["stretch BS"] <= 2 * k - 1
        assert row["stretch greedy"] <= 2 * k - 1
        assert row["|H| greedy"] <= row["|H| Baswana-Sen"] * 1.5
        # both sparsify the dense input
        assert row["|H| greedy"] < graph.num_edges

    benchmark(lambda: baswana_sen_spanner(graph, 3, seed=6))
    benchmark.extra_info["role"] = "baseline"


def test_baseline_growth_with_n(benchmark):
    rows = []
    for n in (150, 300, 600):
        graph = graphs.gnp_graph(n, 0.15, seed=n)
        greedy = greedy_spanner(graph, 2)
        rows.append(
            {
                "n": n,
                "m": graph.num_edges,
                "|H| greedy (k=2)": len(greedy),
                "n^1.5": int(n ** 1.5),
                "ratio": round(len(greedy) / n ** 1.5, 2),
            }
        )
    print_section("Baselines — greedy 3-spanner growth", format_table(rows))
    # the |H| / n^{3/2} ratio stays bounded as n doubles (folklore bound shape)
    ratios = [row["ratio"] for row in rows]
    assert max(ratios) <= 3.0 * min(ratios) + 0.5

    small = graphs.gnp_graph(150, 0.15, seed=150)
    benchmark(lambda: greedy_spanner(small, 2))
