"""Executor benchmark: serial vs thread vs process materialization.

Times ``SpannerLCA.materialize`` through every executor backend on the dense
parallel fixture (gnp n=900, p=0.08, ~32k edges), checks that edges and
per-query probe totals are bit-identical everywhere while it is at it, and
writes the measurements to ``BENCH_parallel.json`` at the repository root.

Shape to check: the process executor (workers attached to the shared-memory
CSR export) must beat the in-process serial engine by ≥2× on a multi-core
host (the CI smoke job relaxes the floor to 1.3× for 2–4 vCPU shared
runners).  The thread backend is reported for completeness — the GIL
serializes pure-Python query work, so its ratio hovers around 1× by design.
Hosts with a single usable core cannot exhibit process-level speedup at all;
there the ratio is recorded honestly and the floor is not enforced (the
JSON carries ``cpu_count`` and ``floor_enforced`` so readers can tell).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import format_table
from repro.core.registry import create

from bench_common import cpu_count, payload_header
from conftest import print_section

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"

#: Acceptance floor for the headline process-vs-serial speedup on multi-core
#: hosts.  The environment override exists for shared CI runners (2–4 vCPUs,
#: noisy neighbors), not for local use.
MIN_PROCESS_SPEEDUP = float(os.environ.get("BENCH_MIN_PROCESS_SPEEDUP", "2.0"))

#: Timing repetitions (best-of, to shrug off scheduler noise).
REPEATS = 2


def _time_best(fn):
    best = None
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, result = elapsed, value
    return best, result


def test_executor_backends_speed_and_equivalence(parallel_benchmark_graph):
    graph = parallel_benchmark_graph.to_backend("csr")
    cpus = cpu_count()
    workers = max(2, cpus)

    def make():
        return create("spanner3", graph, seed=5, hitting_constant=1.0)

    runs = {
        "serial": lambda: make().materialize(mode="batched"),
        "thread": lambda: make().materialize(executor="thread", workers=workers),
        "process": lambda: make().materialize(executor="process", workers=workers),
    }
    timings = {}
    reference = None
    rows = []
    for label, fn in runs.items():
        seconds, materialized = _time_best(fn)
        signature = (
            frozenset(materialized.edges),
            tuple(materialized.probe_stats.query_totals),
        )
        if reference is None:
            reference = signature
        else:
            assert signature == reference, (label, "cross-executor equivalence broken")
        timings[label] = seconds
        rows.append(
            {
                "executor": label,
                "workers": 1 if label == "serial" else workers,
                "seconds": round(seconds, 3),
                "speedup vs serial": round(timings["serial"] / seconds, 2),
                "spanner edges": materialized.num_edges,
                "probe total": materialized.probe_stats.total,
            }
        )

    process_speedup = timings["serial"] / timings["process"]
    thread_speedup = timings["serial"] / timings["thread"]
    floor_enforced = cpus >= 2

    print_section(
        "Parallel execution plane: serial vs thread vs process materialization",
        format_table(rows)
        + f"\n\nprocess vs serial: {process_speedup:.2f}x on {cpus} usable "
        f"CPU(s), {workers} workers"
        + ("" if floor_enforced else "  [single-core host: floor not enforced]"),
    )

    payload = {
        **payload_header("bench_parallel", floor_enforced=floor_enforced),
        "workers": workers,
        "graph": {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "family": "gnp(900, 0.08, seed=101)",
        },
        "min_process_speedup_required": MIN_PROCESS_SPEEDUP,
        "timings_s": {label: round(seconds, 4) for label, seconds in timings.items()},
        "process_speedup_vs_serial": round(process_speedup, 2),
        "thread_speedup_vs_serial": round(thread_speedup, 2),
        "equivalent_across_executors": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    if floor_enforced:
        assert process_speedup >= MIN_PROCESS_SPEEDUP, (
            f"process executor must be at least {MIN_PROCESS_SPEEDUP}x faster "
            f"than the serial engine on this {cpus}-CPU host, measured "
            f"{process_speedup:.2f}x"
        )
