"""Scaling of the 5-spanner LCA (Theorem 1.1 r = 3, Theorems 3.4 / 3.5).

Targets: Õ(n^{4/3}) edges and Õ(n^{5/6}) probes per query.  As for the
3-spanner sweep, sizes grow at fixed density and size/probe exponents are
fitted from sampled queries.  A second, smaller sweep exercises the
Theorem 3.5 variant (r = 4) on graphs whose minimum degree satisfies the
theorem's requirement, checking that it produces spanners no denser than the
r = 3 construction.
"""

from __future__ import annotations

from repro import format_table, graphs
from repro.analysis import exponent_row, run_sweep
from repro.spanner5 import FiveSpannerLCA

from conftest import print_section

SIZES = [200, 400, 800]
DENSITY = 0.12


def test_scaling_5spanner(benchmark):
    sweep = run_sweep(
        "5-spanner LCA",
        lca_factory=lambda g, s: FiveSpannerLCA(g, seed=s, hitting_constant=1.0),
        graph_factory=lambda n, s: graphs.gnp_graph(n, DENSITY, seed=s),
        sizes=SIZES,
        seed=23,
        materialize=False,
        probe_queries=40,
    )
    summary = exponent_row(sweep, target_size_exponent=4 / 3, target_probe_exponent=5 / 6)
    print_section(
        "Scaling S5 — 5-spanner size / probe growth",
        format_table(sweep.rows()) + "\n\n" + format_table([summary]),
    )

    size_exponent = sweep.size_exponent()
    assert size_exponent is not None
    # must grow strictly slower than the m ~ n² input
    assert size_exponent < 1.95

    graph = graphs.gnp_graph(400, DENSITY, seed=24)
    lca = FiveSpannerLCA(graph, seed=23, hitting_constant=1.0)
    u, v = next(iter(graph.edges()))
    benchmark(lambda: lca.query(u, v))
    benchmark.extra_info["size_exponent"] = size_exponent


def test_theorem_3_5_min_degree_variant(benchmark):
    """Theorem 3.5: with min degree ≥ n^{1/2-1/(2r)} larger r gives spanners
    that are no denser, at comparable probe cost."""
    graph = graphs.gnp_graph(300, 0.3, seed=31)  # min degree ≈ 90 ≥ n^{3/8} ≈ 8.5
    rows = []
    estimates = {}
    for r in (3, 4):
        lca = FiveSpannerLCA(graph, seed=7, stretch_parameter=r, hitting_constant=1.0)
        import random

        rng = random.Random(1)
        sample = rng.sample(list(graph.edges()), 150)
        kept = sum(1 for (u, v) in sample if lca.query(u, v))
        estimate = kept / len(sample) * graph.num_edges
        estimates[r] = estimate
        rows.append(
            {
                "r": r,
                "target |H|": f"~O(n^(1+1/{r}))",
                "estimated |H|": int(estimate),
                "max probes (sample)": lca.probe_stats.max,
            }
        )
    print_section("Theorem 3.5 — min-degree 5-spanner variant", format_table(rows))
    # larger r keeps (weakly) fewer edges on a min-degree instance
    assert estimates[4] <= 1.15 * estimates[3]

    u, v = next(iter(graph.edges()))
    lca = FiveSpannerLCA(graph, seed=7, stretch_parameter=4, hitting_constant=1.0)
    benchmark(lambda: lca.query(u, v))
