"""Service benchmark: sharded + scheduled query serving on open-loop workloads.

Runs the online query service (``repro.service``) on the dense fixture for
three workload kinds (uniform, zipf, adaptive), times the batch-coalesced
engine against the unbatched single-shard baseline, verifies that the served
answers and per-request probe totals are bit-identical to a fresh
single-oracle replay, and writes everything to ``BENCH_service.json`` at the
repository root.

Shape to check: batch coalescing (grouping queued requests by shard and
streaming them through the query-answer memo fast path) must be ≥2× the
unbatched single-shard path on the dense fixture's zipf workload — the
skew-heavy stream a serving system actually sees.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import format_table
from repro.core.registry import create
from repro.service import ServiceConfig, ServiceEngine, make_workload

from bench_common import payload_header
from conftest import print_section

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: Acceptance floor for the headline coalescing speedup (dense fixture,
#: zipf workload).  Measured headroom is ~10% (typical ratios are 2.2-2.5x);
#: the environment override exists for noisy shared CI runners.
MIN_COALESCE_SPEEDUP = float(os.environ.get("BENCH_MIN_COALESCE_SPEEDUP", "2.0"))

#: Requests per workload: enough for the query-answer memo to reach a warm
#: steady state on the ~8k-edge dense fixture.
NUM_REQUESTS = {"uniform": 12000, "zipf": 12000, "adaptive": 8000}

#: The headline coalesced-vs-unbatched comparison runs longer so the warm
#: steady state dominates and the measured ratio is stable (~2.4x at 20k
#: requests vs ~2.2x at 12k, where the cold ramp still dilutes it).
HEADLINE_REQUESTS = 20000

WORKLOAD_SEED = 3


def _run(graph, kind, config, record=False, num_requests=None):
    config.record = record
    workload = make_workload(
        kind,
        graph,
        num_requests=num_requests if num_requests else NUM_REQUESTS[kind],
        seed=WORKLOAD_SEED,
    )
    engine = ServiceEngine(graph, lambda g: create("spanner3", g, seed=5,
                                                   hitting_constant=1.0), config)
    report = engine.run(workload)
    return engine, report


def test_service_workloads_and_coalescing(dense_benchmark_graph):
    graph = dense_benchmark_graph.to_backend("csr")

    # ---- per-workload service rows (sharded, coalesced) ------------------
    rows = []
    records = []
    for kind in ("uniform", "zipf", "adaptive"):
        _, report = _run(
            graph, kind, ServiceConfig(num_shards=4, batch_size=64, routing="hash")
        )
        assert report.served == NUM_REQUESTS[kind]
        assert report.rejected == 0
        rows.append(report.as_row())
        records.append(report.as_dict())

    # ---- headline: coalesced vs unbatched, single shard, zipf ------------
    timings = {}
    for label, config in (
        ("unbatched", ServiceConfig(num_shards=1, batch_size=1, coalesce=False)),
        ("coalesced", ServiceConfig(num_shards=1, batch_size=64, coalesce=True)),
    ):
        _, report = _run(graph, "zipf", config, num_requests=HEADLINE_REQUESTS)
        timings[label] = report
        rows.append(report.as_row())
    speedup = timings["coalesced"].throughput_rps / max(
        timings["unbatched"].throughput_rps, 1e-9
    )

    # ---- equivalence: served answers == fresh single-oracle replay ------
    engine, report = _run(
        graph, "zipf", ServiceConfig(num_shards=4, batch_size=64), record=True
    )
    baseline = create("spanner3", graph, seed=5, hitting_constant=1.0)
    replay = baseline.query_batch([(r.u, r.v) for r in engine.records])
    for record, answer, total in zip(engine.records, replay.answers,
                                     replay.probe_totals):
        assert record.in_spanner == answer, "sharded answer diverged from baseline"
        assert record.probe_total == total, "probe accounting diverged from baseline"

    # ---- overload: admission control sheds load, never errors ------------
    _, overload = _run(
        graph,
        "uniform",
        ServiceConfig(num_shards=2, batch_size=16, arrival_burst=256,
                      max_queue_depth=64),
    )
    assert overload.rejected > 0, "overload run should shed load"
    assert overload.served == overload.admitted
    assert overload.served + overload.rejected == overload.offered

    print_section(
        "Online query service: workloads, sharding, batch coalescing",
        format_table(rows)
        + f"\n\ncoalesced vs unbatched (zipf, 1 shard): {speedup:.2f}x"
        + f"\noverload run: {overload.rejected}/{overload.offered} rejected "
        f"(queue depth {overload.max_queue_depth_seen})",
    )

    payload = {
        **payload_header("bench_service"),
        "min_coalesce_speedup_required": MIN_COALESCE_SPEEDUP,
        "coalesce_speedup_zipf": round(speedup, 2),
        "workloads": records,
        "headline": {
            "unbatched": timings["unbatched"].as_dict(),
            "coalesced": timings["coalesced"].as_dict(),
        },
        "overload": overload.as_dict(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= MIN_COALESCE_SPEEDUP, (
        "batch coalescing must be at least "
        f"{MIN_COALESCE_SPEEDUP}x faster than the unbatched single-shard "
        f"path on the dense zipf workload, measured {speedup:.2f}x"
    )
