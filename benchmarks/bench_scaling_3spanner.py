"""Scaling of the 3-spanner LCA (Theorem 1.1, r = 2).

The theorem promises Õ(n^{3/2}) spanner edges and Õ(n^{3/4}) probes per query
on dense graphs.  This benchmark sweeps increasing graph sizes at constant
G(n, p) density, estimates the spanner size from the query YES-rate and the
probe complexity from per-query measurements, fits log-log exponents and
compares them against the paper's 1.5 / 0.75 targets (the input size m grows
like n², so a fitted size exponent well below 2 demonstrates sparsification).
"""

from __future__ import annotations

from repro import format_table, graphs
from repro.analysis import exponent_row, run_sweep
from repro.spanner3 import ThreeSpannerLCA

from conftest import print_section

SIZES = [200, 400, 800, 1600]
DENSITY = 0.12


def test_scaling_3spanner(benchmark):
    sweep = run_sweep(
        "3-spanner LCA",
        lca_factory=lambda g, s: ThreeSpannerLCA(g, seed=s, hitting_constant=1.0),
        graph_factory=lambda n, s: graphs.gnp_graph(n, DENSITY, seed=s),
        sizes=SIZES,
        seed=17,
        materialize=False,
        probe_queries=120,
    )
    summary = exponent_row(sweep, target_size_exponent=1.5, target_probe_exponent=0.75)
    print_section(
        "Scaling S3 — 3-spanner size / probe growth",
        format_table(sweep.rows()) + "\n\n" + format_table([summary]),
    )

    size_exponent = sweep.size_exponent()
    probe_exponent = sweep.probe_exponent()
    assert size_exponent is not None and probe_exponent is not None
    # The input grows like n^2; the spanner must grow strictly slower, in the
    # vicinity of the n^{3/2} target (log factors and the sampled-estimate
    # noise leave a generous band).
    assert size_exponent < 1.95
    # Probe growth must stay sublinear in n (target n^{0.75}).
    assert probe_exponent < 1.1

    # Benchmark a single query at the largest size.
    graph = graphs.gnp_graph(SIZES[-1], DENSITY, seed=17 + len(SIZES) - 1)
    lca = ThreeSpannerLCA(graph, seed=17, hitting_constant=1.0)
    u, v = next(iter(graph.edges()))
    benchmark(lambda: lca.query(u, v))
    benchmark.extra_info["size_exponent"] = size_exponent
    benchmark.extra_info["probe_exponent"] = probe_exponent


def test_density_sweep_sparsification_ratio(benchmark):
    """Fixed n, growing density: the kept fraction |H|/m must fall.

    The Õ(n^{3/2}) bound is independent of m, so as the input gets denser the
    spanner keeps a smaller and smaller fraction of the edges — this is the
    crossover that makes the construction useful precisely on dense graphs.
    """
    import random

    n = 700
    rows = []
    ratios = []
    for density in (0.05, 0.15, 0.35):
        graph = graphs.gnp_graph(n, density, seed=71)
        lca = ThreeSpannerLCA(graph, seed=5, hitting_constant=1.0)
        rng = random.Random(2)
        sample = rng.sample(list(graph.edges()), 250)
        kept = sum(1 for (u, v) in sample if lca.query(u, v))
        ratio = kept / len(sample)
        ratios.append(ratio)
        rows.append(
            {
                "n": n,
                "density p": density,
                "m": graph.num_edges,
                "kept fraction": round(ratio, 3),
                "estimated |H|": int(ratio * graph.num_edges),
                "n^1.5": int(n ** 1.5),
            }
        )
    print_section("Scaling S3b — sparsification vs input density", format_table(rows))
    # the kept fraction decreases as the graph gets denser
    assert ratios[-1] < ratios[0]

    graph = graphs.gnp_graph(n, 0.35, seed=71)
    lca = ThreeSpannerLCA(graph, seed=5, hitting_constant=1.0)
    u, v = next(iter(graph.edges()))
    benchmark(lambda: lca.query(u, v))
