"""Classic LCAs (MIS / maximal matching): probe growth with the degree.

The paper's introduction motivates its spanner LCAs by contrasting them with
the classic LCAs, whose probe complexity grows (at least) exponentially with
Δ and is therefore useless exactly in the dense regime where sparsification
matters.  This benchmark measures the per-query probe counts of the
random-order greedy MIS and matching LCAs as the degree grows, next to the
3-spanner LCA's probes on the same graphs — making the "polynomial in n,
independent of Δ" selling point of the paper concrete.
"""

from __future__ import annotations

import random

from repro import format_table, graphs
from repro.lca_classic import MaximalIndependentSetLCA, MaximalMatchingLCA
from repro.spanner3 import ThreeSpannerLCA

from conftest import print_section

N = 240
DEGREES = [4, 8, 16, 32]


def _regularish_graph(n, degree, seed):
    return graphs.circulant_graph(n, list(range(1, degree // 2 + 1)), seed=seed)


def test_classic_lca_probe_growth_with_degree(benchmark):
    rows = []
    rng = random.Random(1)
    for degree in DEGREES:
        graph = _regularish_graph(N, degree, seed=degree)
        mis = MaximalIndependentSetLCA(graph, seed=3)
        matching = MaximalMatchingLCA(graph, seed=3)
        spanner = ThreeSpannerLCA(graph, seed=3, hitting_constant=1.0)

        vertices = rng.sample(graph.vertices(), 25)
        for v in vertices:
            mis.query(v)
        edges = rng.sample(list(graph.edges()), 25)
        for (u, v) in edges:
            matching.query(u, v)
            spanner.query(u, v)

        rows.append(
            {
                "Δ": graph.max_degree(),
                "m": graph.num_edges,
                "MIS max probes": mis.probe_stats.max,
                "matching max probes": matching.probe_stats.max,
                "3-spanner max probes": spanner.probe_stats.max,
            }
        )

    print_section(
        "Classic LCAs — probe growth with the maximum degree", format_table(rows)
    )

    # Shape: the matching LCA's probe count explodes with Δ (its dependency
    # cone is over edges), while the 3-spanner LCA grows gently.
    assert rows[-1]["matching max probes"] > 4 * rows[0]["matching max probes"]
    first_ratio = rows[0]["matching max probes"] / max(1, rows[0]["3-spanner max probes"])
    last_ratio = rows[-1]["matching max probes"] / max(1, rows[-1]["3-spanner max probes"])
    assert last_ratio > first_ratio  # the spanner LCA wins more as Δ grows

    graph = _regularish_graph(N, DEGREES[-1], seed=DEGREES[-1])
    matching = MaximalMatchingLCA(graph, seed=3)
    u, v = next(iter(graph.edges()))
    benchmark(lambda: matching.query(u, v))
    benchmark.extra_info["role"] = "context (Section 1)"
