"""Package metadata and console entry point.

``pip install -e .`` makes the library importable without PYTHONPATH tricks
and installs the ``repro`` command, so CLI workflows read
``repro serve-bench ...`` instead of ``python -m repro.cli serve-bench ...``.
Kept as a plain ``setup.py`` (no pyproject) so editable installs work in
offline environments whose setuptools lacks the PEP 660 wheel-based
editable path.
"""

from setuptools import find_packages, setup

setup(
    name="repro-spanner-lca",
    version="1.0.0",
    description=(
        "Local computation algorithms for graph spanners "
        "(Parter-Rubinfeld-Vakilian-Yodpinyanee reproduction) with an "
        "online query-serving layer"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ]
    },
)
