"""Package metadata and console entry point.

``pip install -e .`` makes the library importable without PYTHONPATH tricks
and installs the ``repro`` command, so CLI workflows read
``repro serve-bench ...`` instead of ``python -m repro.cli serve-bench ...``.
Kept as a plain ``setup.py`` so editable installs work in offline
environments whose setuptools lacks the PEP 660 wheel-based editable path;
the ``pyproject.toml`` next to this file carries only tool configuration
(ruff), not build metadata.
"""

from setuptools import find_packages, setup

setup(
    name="repro-spanner-lca",
    version="1.0.0",
    description=(
        "Local computation algorithms for graph spanners "
        "(Parter-Rubinfeld-Vakilian-Yodpinyanee reproduction) with an "
        "online query-serving layer"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # CI exercises 3.10-3.12; keep the floor in lockstep so an install on an
    # untested interpreter fails loudly instead of at runtime.
    python_requires=">=3.10",
    # The core library is dependency-free; numpy only unlocks the vectorized
    # probe kernels (see docs/kernels.md).  Without it, kernel="numpy" fails
    # with a one-line error pointing at this extra and everything else runs
    # on the scalar paths.
    # The lint extra pins the one external linter CI runs alongside
    # `repro lint` (scoped to pyflakes F-codes in pyproject.toml); the
    # in-repo AST checker itself is stdlib-only and needs no install.
    extras_require={
        "fast": ["numpy"],
        "lint": ["ruff==0.8.4"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Operating System :: POSIX :: Linux",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Mathematics",
        "Topic :: System :: Distributed Computing",
    ],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ]
    },
)
