"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs (``pip install -e .``) work in offline environments whose
setuptools lacks the PEP 660 wheel-based editable path.
"""

from setuptools import setup

setup()
